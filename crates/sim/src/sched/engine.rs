//! The conservative parallel discrete-event engine.
//!
//! # Execution model
//!
//! Execution proceeds in **epochs**. At each epoch boundary (all
//! previously dispatched tasks blocked or finished) the engine, under
//! one mutex:
//!
//! 1. **Promotes lock gates** (`crate::sched::lookahead`): front
//!    waiters of virtual-time-ordered lock queues whose grant can no
//!    longer be preceded by any competing request become runnable.
//! 2. **Selects a batch** (`crate::sched::queue`): every runnable
//!    task whose ready time lies within `lookahead` of the global
//!    minimum `m` — at most one per node — with the epoch horizon
//!    `H = m + L` (or `H = ∞` for a solo batch).
//! 3. **Dispatches** the batch onto the worker pool: all members
//!    concurrently under [`SchedulerMode::Parallel`] (up to `workers`
//!    unparked at once), or one at a time in ascending `(ready, id)`
//!    order under [`SchedulerMode::Deterministic`].
//!
//! # Why the two modes produce byte-identical reports
//!
//! The epoch/lookahead safety argument, in full:
//!
//! * **Batch membership is decided before any member runs**, so both
//!   modes compute the same batches from the same boundary states.
//! * **No member can place an event in a co-member's consumable
//!   past.** Every cross-node interaction rides the simulated network:
//!   a member whose turn starts at `ready ≥ m` sends messages whose
//!   arrival is at least `ready + L ≥ m + L = H` (the cost model's
//!   `one_way` is bounded below by the minimum link latency, and fault
//!   injection only *adds* delay). Comm tasks consume buffered
//!   messages in `(arrival, src, seq)` order and only strictly below
//!   their turn's horizon `H`, so the set *and* order of messages a
//!   comm turn handles is a pure function of virtual time — messages
//!   racing in from co-members sort at or beyond `H` and wait for a
//!   later epoch regardless of physical arrival order.
//! * **Shared service state is order-invariant within an epoch.**
//!   Clock merges (`advance_to`) and statistics are commutative;
//!   barrier rendezvous fold their inputs with max/set-union merges
//!   keyed by `(arrive, node)`; lock queues order by virtual request
//!   arrival and grants pass through the conservative gate, which only
//!   opens at an epoch boundary once no competing earlier request can
//!   exist. Intra-batch physical interleaving therefore cannot change
//!   any virtual value.
//! * **Wake hints min-merge.** A blocked task's ready time is its
//!   block-time clock, lowered (never raised) by message-arrival
//!   hints; concurrent wakes commute.
//!
//! By induction over epochs, the cluster state at every epoch boundary
//! — and hence every report — is identical under `Deterministic`,
//! `Parallel { workers: 1 }` and `Parallel { workers: N }`. The
//! sequential mode stays the oracle; `tests/determinism.rs` gates the
//! equivalence on every committed workload.
//!
//! # Worker pool
//!
//! Tasks are OS threads used as coroutine stacks: they park between
//! turns and the engine unparks at most `workers` of them at a time,
//! so a `p = 256` cluster costs a bounded number of *runnable* threads
//! (host CPU pressure is `min(batch, workers)`), while parked stacks
//! are lazily-committed virtual memory. Per-worker busy time is
//! tracked in host nanoseconds for the scheduler-observability
//! counters (informative only — host time never feeds virtual state).
//!
//! # Deadlock detection
//!
//! The detector only examines quiesced states: it runs at an epoch
//! boundary, after gate promotion, when nothing is runnable. If a
//! non-daemon is still blocked, no wake can ever arrive (only running
//! tasks and the external shutdown path produce wakes), so the engine
//! panics every parked thread with a snapshot that names each task's
//! blocked-on reason.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::clock::{SimDuration, SimInstant};
use crate::stats::SchedSummary;

use super::explore::ScheduleScript;
use super::lookahead;
use super::queue;
use super::task::{BlockReason, Task, TaskState};
use super::SchedulerMode;

#[derive(Default)]
struct State {
    tasks: Vec<Task>,
    /// [`SchedulerMode::Explore`]: the decision stream that reorders
    /// multi-member epoch batches. `None` keeps the canonical order.
    script: Option<ScheduleScript>,
    /// Selected batch members not yet dispatched, in dispatch order.
    pending: Vec<usize>,
    /// Index into `pending` of the next member to dispatch.
    next: usize,
    /// Tasks currently dispatched (state `Running`).
    running: usize,
    launched: bool,
    deadlocked: bool,
    /// Horizon of the current epoch, copied to tasks at dispatch.
    horizon: u64,
    /// Worker-pool slots: dispatch start instant per busy slot.
    slots: Vec<Option<Instant>>,
    /// Accumulated host busy-time per worker slot, in nanoseconds.
    busy_ns: Vec<u64>,
    epochs: u64,
    turns: u64,
    wakes: u64,
    max_concurrent: usize,
    /// Extra context appended to deadlock snapshots — the runtime
    /// installs a hook that renders, e.g., the transport's log of
    /// messages dropped without retransmission, so a node blocked on a
    /// lost reply is named `(src, dst, seq)` instead of a bare `Reply`.
    diagnostic: Option<Box<dyn Fn() -> String + Send + Sync>>,
}

/// The cluster-wide epoch engine (see the module docs).
pub struct Scheduler {
    state: Mutex<State>,
    /// Concurrency cap: 1 in `Deterministic`, `workers` in `Parallel`.
    cap: usize,
    /// Lookahead window in nanoseconds (minimum link latency).
    lookahead: u64,
}

/// One task's identity on a [`Scheduler`]: the handle node threads use
/// to attach, block and get woken. Cheap to clone; any thread may call
/// [`SchedHandle::wake`], but [`SchedHandle::attach`], the blocking
/// calls and [`SchedHandle::finish`] belong to the owning thread.
#[derive(Clone)]
pub struct SchedHandle {
    sched: Arc<Scheduler>,
    id: usize,
}

impl std::fmt::Debug for SchedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SchedHandle(task {})", self.id)
    }
}

impl Scheduler {
    /// A fresh engine. `mode` must be a virtual-time mode
    /// ([`SchedulerMode::FreeRunning`] runs without a scheduler);
    /// `lookahead` is the network's minimum link latency — see
    /// [`crate::cost::NetModel::min_latency`].
    pub fn new(mode: SchedulerMode, lookahead: SimDuration) -> Arc<Scheduler> {
        let cap = match mode {
            // Explore permutes within-epoch order but dispatches one
            // task at a time, like the sequential oracle — a schedule
            // is a total dispatch order, so it must be sequential to
            // be a *schedule* at all.
            SchedulerMode::Deterministic | SchedulerMode::Explore { .. } => 1,
            SchedulerMode::Parallel { workers } => workers.max(1),
            SchedulerMode::FreeRunning => {
                panic!("free-running mode does not use the virtual-time engine")
            }
        };
        Arc::new(Scheduler {
            state: Mutex::new(State {
                slots: vec![None; cap],
                busy_ns: vec![0; cap],
                ..State::default()
            }),
            cap,
            lookahead: lookahead.0,
        })
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // Tolerate poisoning: the deadlock detector panics while the
        // guard is held, and every other thread must still be able to
        // observe the `deadlocked` flag to fail loudly.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a task before [`Scheduler::launch`]. `clock` is the
    /// node clock this task advances; `node` its simulated node (at
    /// most one task per node runs per epoch); `daemon` marks service
    /// tasks (comm threads) that legitimately stay blocked until an
    /// external shutdown wake. Non-daemon tasks must be registered
    /// first, in rank order — the conservative lock gate compares
    /// their ids with node ranks.
    pub fn register(
        self: &Arc<Self>,
        name: impl Into<String>,
        clock: SimClock,
        node: usize,
        daemon: bool,
    ) -> SchedHandle {
        let mut st = self.lock();
        assert!(!st.launched, "register after launch");
        let id = st.tasks.len();
        assert!(
            daemon || id == node,
            "non-daemon tasks must be registered first, in rank order"
        );
        st.tasks.push(Task::new(name.into(), clock, node, daemon));
        SchedHandle {
            sched: Arc::clone(self),
            id,
        }
    }

    /// Install the schedule script that [`SchedulerMode::Explore`]
    /// consults at every multi-member epoch. Call before
    /// [`Scheduler::launch`].
    pub fn set_script(&self, script: ScheduleScript) {
        let mut st = self.lock();
        assert!(!st.launched, "set_script after launch");
        st.script = Some(script);
    }

    /// Install a hook whose output is appended to every deadlock
    /// snapshot (empty output is skipped). The runtimes wire this to
    /// the transport's drop log so irrecoverable message loss is named
    /// in the panic instead of surfacing as an anonymous blocked task.
    pub fn set_diagnostic(&self, hook: impl Fn() -> String + Send + Sync + 'static) {
        let mut st = self.lock();
        st.diagnostic = Some(Box::new(hook));
    }

    /// Start execution: select and dispatch the first epoch. Call
    /// once, after all tasks are registered and their threads spawned.
    pub fn launch(&self) {
        let mut st = self.lock();
        assert!(!st.launched, "launch called twice");
        st.launched = true;
        Self::select_epoch(&mut st, self.cap, self.lookahead);
    }

    /// Epoch boundary: promote lock gates, select the next batch,
    /// start dispatching it. Caller must have verified quiescence
    /// (`running == 0`, no pending members).
    fn select_epoch(st: &mut State, cap: usize, lookahead: u64) {
        debug_assert_eq!(st.running, 0);
        debug_assert_eq!(st.next, st.pending.len());
        if st.deadlocked {
            return; // everyone is being panicked awake; stop dispatching
        }
        for id in lookahead::promotable(&st.tasks, lookahead) {
            let t = &mut st.tasks[id];
            t.state = TaskState::Runnable;
            t.reason = BlockReason::Other;
        }
        match queue::select(&st.tasks, lookahead) {
            Some(mut batch) => {
                // Explore mode: let the script pick the dispatch order
                // of a multi-member batch. Selecting repeatedly among
                // the remaining members enumerates all k! orders of a
                // k-member batch; the conservative safety argument
                // says every one must yield the same report.
                if batch.members.len() > 1 {
                    if let Some(script) = &st.script {
                        let mut rest = std::mem::take(&mut batch.members);
                        while rest.len() > 1 {
                            batch.members.push(rest.remove(script.choose(rest.len())));
                        }
                        batch.members.extend(rest);
                    }
                }
                st.horizon = batch.horizon;
                st.pending = batch.members;
                st.next = 0;
                // Count the epoch only while application tasks are
                // still live. After the last one finishes, remaining
                // batches serve daemon teardown, driven by wakes from
                // *outside* the engine (the runtime's shutdown pokes)
                // — how those coalesce into batches depends on host
                // timing, so counting them would break the counter's
                // cross-engine determinism.
                if st
                    .tasks
                    .iter()
                    .any(|t| !t.daemon && t.state != TaskState::Finished)
                {
                    st.epochs += 1;
                }
                st.max_concurrent = st.max_concurrent.max(st.pending.len().min(cap));
                Self::refill(st, cap);
            }
            None => {
                // Nothing runnable and nothing promotable. Daemons
                // blocked while all workers are done is the normal
                // idle state before the external shutdown wake; a
                // blocked *worker* can never be woken now.
                if st
                    .tasks
                    .iter()
                    .any(|t| !t.daemon && t.state == TaskState::Blocked)
                {
                    st.deadlocked = true;
                    let snapshot = Self::render(st);
                    for t in &st.tasks {
                        if let Some(th) = &t.thread {
                            th.unpark();
                        }
                    }
                    panic!(
                        "virtual-time deadlock: no task is runnable or promotable \
                         but workers are blocked\n{snapshot}"
                    );
                }
            }
        }
    }

    /// Dispatch pending batch members up to the concurrency cap.
    fn refill(st: &mut State, cap: usize) {
        // Like epochs, turns are only counted while application tasks
        // are live: teardown dispatches of daemons are driven by the
        // runtime's external shutdown pokes, whose coalescing into
        // turns depends on host timing.
        let live = st
            .tasks
            .iter()
            .any(|t| !t.daemon && t.state != TaskState::Finished);
        while st.running < cap && st.next < st.pending.len() {
            let id = st.pending[st.next];
            st.next += 1;
            let slot = st
                .slots
                .iter()
                .position(|s| s.is_none())
                .expect("running < cap implies a free slot");
            // det:allow(host-time): worker busy-time observability only
            // (`worker_busy_ns`); host nanoseconds never feed virtual
            // state, reports or fingerprints.
            st.slots[slot] = Some(Instant::now());
            let horizon = st.horizon;
            st.running += 1;
            if live {
                st.turns += 1;
            }
            let t = &mut st.tasks[id];
            debug_assert_eq!(t.state, TaskState::Runnable);
            t.state = TaskState::Running;
            t.horizon = horizon;
            t.worker = slot;
            if live {
                t.turns += 1;
            }
            if let Some(th) = &t.thread {
                th.unpark();
            }
        }
    }

    /// A dispatched task's turn ended (it blocked, yielded or
    /// finished): release its worker slot, keep the pool full, and
    /// close the epoch when the batch has fully quiesced.
    fn end_turn(st: &mut State, id: usize, cap: usize, lookahead: u64) {
        let slot = st.tasks[id].worker;
        if let Some(start) = st.slots[slot].take() {
            st.busy_ns[slot] += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        st.running -= 1;
        Self::refill(st, cap);
        if st.running == 0 && st.next == st.pending.len() {
            Self::select_epoch(st, cap, lookahead);
        }
    }

    fn render(st: &State) -> String {
        let mut out = String::new();
        for (i, t) in st.tasks.iter().enumerate() {
            let reason = match t.state {
                TaskState::Blocked => format!(" on {}", t.reason.name()),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  task {i} {:<14} {:?}{}{} clock {} ready {}",
                t.name,
                t.state,
                reason,
                if t.daemon { " (daemon)" } else { "" },
                t.clock.now(),
                SimInstant(t.ready_at),
            );
        }
        if let Some(hook) = &st.diagnostic {
            let extra = hook();
            if !extra.is_empty() {
                let _ = writeln!(out, "{extra}");
            }
        }
        out
    }

    /// Scheduler-observability snapshot: turns, wakes, epochs, the
    /// maximum dispatch concurrency, and host busy-time per worker.
    pub fn summary(&self) -> SchedSummary {
        let st = self.lock();
        SchedSummary {
            turns: st.turns,
            wakes: st.wakes,
            epochs: st.epochs,
            max_concurrent: st.max_concurrent,
            worker_busy_ns: st.busy_ns.clone(),
        }
    }
}

use crate::clock::SimClock;

impl SchedHandle {
    /// This task's id (registration order; also the tie-breaker).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Bind the calling thread to this task and park until dispatched.
    /// Must be the first scheduler call on the task's own thread.
    pub fn attach(&self) {
        {
            let mut st = self.sched.lock();
            st.tasks[self.id].thread = Some(std::thread::current());
        }
        self.wait_until_running();
    }

    /// Hand the execution token back: park this task until another
    /// task (or the external shutdown path) wakes it. If a wake
    /// arrived while this task was running, returns immediately —
    /// callers always re-check their wait condition in a loop.
    pub fn block(&self) {
        self.block_with(BlockReason::Other);
    }

    /// [`SchedHandle::block`] with an explicit reason — feeds the
    /// conservative lock gate's bounds and the deadlock snapshot.
    pub fn block_with(&self, reason: BlockReason) {
        {
            let mut st = self.sched.lock();
            let t = &mut st.tasks[self.id];
            debug_assert_eq!(t.state, TaskState::Running, "block() by a non-running task");
            if t.wake_pending {
                t.wake_pending = false;
                return;
            }
            t.state = TaskState::Blocked;
            t.reason = reason;
            t.ready_at = match reason {
                // Idle daemons park at virtual infinity so they never
                // hold the lookahead window back; a message hint or
                // the shutdown wake lowers this.
                BlockReason::Idle => u64::MAX,
                _ => t.clock.now().nanos(),
            };
            Scheduler::end_turn(&mut st, self.id, self.sched.cap, self.sched.lookahead);
        }
        self.wait_until_running();
    }

    /// Block as the gated front of a lock queue with request key
    /// `(at, rank)`. Returns only when the engine has proven, at an
    /// epoch boundary, that no competing request can sort ahead —
    /// plain wakes (including any sticky wake already pending) are
    /// ignored, so the caller may take the grant unconditionally
    /// (after re-checking service poisoning).
    pub fn block_gated(&self, at: SimInstant, rank: usize) {
        {
            let mut st = self.sched.lock();
            let t = &mut st.tasks[self.id];
            debug_assert_eq!(t.state, TaskState::Running, "block by a non-running task");
            // A sticky wake is a stale condition signal (a release we
            // already observed); the gate is the only valid waker here.
            t.wake_pending = false;
            t.state = TaskState::Blocked;
            t.reason = BlockReason::LockGate {
                at: at.nanos(),
                rank,
            };
            t.ready_at = t.clock.now().nanos();
            Scheduler::end_turn(&mut st, self.id, self.sched.cap, self.sched.lookahead);
        }
        self.wait_until_running();
    }

    /// End this turn but stay runnable at virtual instant `at` — a
    /// timed yield, used by comm tasks holding buffered messages whose
    /// arrival lies beyond the current horizon. A sticky wake makes it
    /// return immediately, like [`SchedHandle::block`].
    pub fn yield_until(&self, at: SimInstant) {
        {
            let mut st = self.sched.lock();
            let t = &mut st.tasks[self.id];
            debug_assert_eq!(t.state, TaskState::Running, "yield by a non-running task");
            if t.wake_pending {
                t.wake_pending = false;
                return;
            }
            t.state = TaskState::Runnable;
            t.ready_at = at.nanos();
            Scheduler::end_turn(&mut st, self.id, self.sched.cap, self.sched.lookahead);
        }
        self.wait_until_running();
    }

    /// The virtual horizon of this task's current turn: buffered
    /// events with arrival strictly before it are safe to consume;
    /// later ones belong to a future epoch.
    pub fn horizon(&self) -> SimInstant {
        SimInstant(self.sched.lock().tasks[self.id].horizon)
    }

    /// Make this task runnable. On a blocked task the ready time stays
    /// its block-time clock (idle daemons resume at their own clock).
    pub fn wake(&self) {
        self.wake_inner(None);
    }

    /// Make this task runnable no later than virtual instant `at`
    /// (e.g. the arrival of the message that unblocks it). Hints
    /// min-merge: concurrent wakes from different senders commute.
    pub fn wake_at(&self, at: SimInstant) {
        self.wake_inner(Some(at));
    }

    fn wake_inner(&self, at: Option<SimInstant>) {
        let mut st = self.sched.lock();
        st.wakes += 1;
        let launched = st.launched;
        let idle = st.running == 0 && st.next == st.pending.len();
        let t = &mut st.tasks[self.id];
        t.wakes += 1;
        match t.state {
            TaskState::Blocked => {
                // Gated tasks are woken only by gate promotion: an
                // early wake (a stale waiter-list entry drained by a
                // release) must not let a grant through the gate.
                if matches!(t.reason, BlockReason::LockGate { .. }) {
                    return;
                }
                t.state = TaskState::Runnable;
                t.reason = BlockReason::Other;
                let hint = at
                    .map(SimInstant::nanos)
                    .unwrap_or_else(|| t.clock.now().nanos());
                t.ready_at = t.ready_at.min(hint);
                if launched && idle {
                    // External wake (shutdown path) while the cluster
                    // is idle: restart dispatching ourselves.
                    Scheduler::select_epoch(&mut st, self.sched.cap, self.sched.lookahead);
                }
            }
            TaskState::Running => t.wake_pending = true,
            TaskState::Runnable => {
                if let Some(a) = at {
                    t.ready_at = t.ready_at.min(a.nanos());
                }
            }
            TaskState::Finished => {}
        }
    }

    /// Retire this task and keep the engine running. Idempotent.
    pub fn finish(&self) {
        let mut st = self.sched.lock();
        let t = &mut st.tasks[self.id];
        let was_running = t.state == TaskState::Running;
        t.state = TaskState::Finished;
        t.wake_pending = false;
        if was_running {
            Scheduler::end_turn(&mut st, self.id, self.sched.cap, self.sched.lookahead);
        }
    }

    /// This task's dispatch count (scheduler observability).
    pub fn turns(&self) -> u64 {
        self.sched.lock().tasks[self.id].turns
    }

    /// Wake calls aimed at this task (scheduler observability).
    pub fn wakes(&self) -> u64 {
        self.sched.lock().tasks[self.id].wakes
    }

    fn wait_until_running(&self) {
        loop {
            {
                let st = self.sched.lock();
                if st.deadlocked {
                    panic!(
                        "virtual-time deadlock detected while task {} ({}) was parked\n{}",
                        self.id,
                        st.tasks[self.id].name,
                        Scheduler::render(&st)
                    );
                }
                if st.tasks[self.id].state == TaskState::Running {
                    return;
                }
            }
            std::thread::park();
        }
    }
}
