//! Schedule scripting for exhaustive exploration.
//!
//! The conservative engine claims that every dispatch order of an
//! epoch batch (and hence every lock-grant processing order within
//! it) produces byte-identical reports. [`ScheduleScript`] turns that
//! claim into something mechanically checkable: under
//! [`SchedulerMode::Explore`](super::SchedulerMode::Explore) the
//! engine consults the script at every point where more than one
//! batch member could be dispatched next, instead of always using the
//! canonical ascending `(ready, id)` order.
//!
//! A script is a **decision prefix** plus a **trace**. Replaying a run
//! with a longer prefix steers it down a different branch of the
//! schedule tree; the recorded trace (each choice's pick and arity)
//! tells the driver how to backtrack. The DFS driver itself lives in
//! `lots-analyze` — this module only provides the choice point.

use std::sync::{Arc, Mutex};

/// One recorded decision: which alternative was picked out of how
/// many. Arity-1 decisions are never recorded (nothing to explore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Index picked, in `0..arity`.
    pub picked: usize,
    /// Number of alternatives that existed at this point.
    pub arity: usize,
}

#[derive(Default)]
struct ScriptState {
    /// Decisions to replay, outermost first.
    prefix: Vec<usize>,
    /// How many decisions have been consumed so far.
    cursor: usize,
    /// Every decision actually taken this run (replayed or defaulted).
    trace: Vec<Choice>,
}

/// A shared, replayable schedule decision stream (see module docs).
/// Cheap to clone; all clones observe the same state.
#[derive(Clone, Default)]
pub struct ScheduleScript {
    inner: Arc<Mutex<ScriptState>>,
}

impl ScheduleScript {
    /// A script that replays `prefix` and then takes alternative 0 at
    /// every further decision (the canonical order).
    pub fn new(prefix: Vec<usize>) -> ScheduleScript {
        ScheduleScript {
            inner: Arc::new(Mutex::new(ScriptState {
                prefix,
                cursor: 0,
                trace: Vec::new(),
            })),
        }
    }

    /// Take the next decision among `arity` alternatives: the next
    /// prefix entry if one remains (clamped to the arity, which is a
    /// pure function of the decisions before it and so never actually
    /// clamps during a well-formed DFS), otherwise 0. Arity ≤ 1 is a
    /// non-decision and is neither consumed nor traced.
    pub fn choose(&self, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        let mut st = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let picked = if st.cursor < st.prefix.len() {
            st.prefix[st.cursor].min(arity - 1)
        } else {
            0
        };
        st.cursor += 1;
        st.trace.push(Choice { picked, arity });
        picked
    }

    /// The decisions taken so far this run. Valid even after a run
    /// that panicked mid-way (e.g. into the deadlock detector): the
    /// trace covers every choice made before the panic, which is
    /// exactly what a DFS needs to backtrack past it.
    pub fn trace(&self) -> Vec<Choice> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trace
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_prefix_then_defaults_to_zero() {
        let s = ScheduleScript::new(vec![2, 1]);
        assert_eq!(s.choose(3), 2);
        assert_eq!(s.choose(2), 1);
        assert_eq!(s.choose(4), 0);
        assert_eq!(
            s.trace(),
            vec![
                Choice {
                    picked: 2,
                    arity: 3
                },
                Choice {
                    picked: 1,
                    arity: 2
                },
                Choice {
                    picked: 0,
                    arity: 4
                },
            ]
        );
    }

    #[test]
    fn arity_one_is_transparent() {
        let s = ScheduleScript::new(vec![1]);
        assert_eq!(s.choose(1), 0);
        assert_eq!(
            s.choose(2),
            1,
            "prefix entry must not be consumed by arity-1"
        );
        assert!(s.trace().len() == 1);
    }
}
