//! The conservative lock-grant gate.
//!
//! Lock services order their waiter queues by *virtual request
//! arrival* `(at, rank)` instead of physical FIFO, which makes the
//! grant **order** a pure function of virtual time. What remains is
//! the grant **decision**: the front waiter may only proceed once no
//! other task could still issue a request that would sort ahead of it.
//! That is exactly a conservative-DES null-message bound, and this
//! module computes it from the engine's global task table.
//!
//! For a gated front waiter with key `(at, rank)`, every other
//! unfinished non-daemon task `o` contributes a lower bound on the
//! earliest virtual arrival of any lock request it could still make:
//!
//! * **Runnable / generic-blocked** — `(ready_o, id_o)`: it resumes at
//!   its ready time and a fresh request costs at least one wire
//!   latency more; using the ready time itself is conservative.
//! * **Lock queue / lock gate** — its current request key: granting and
//!   releasing (then re-requesting) only moves it later.
//! * **Reply wait** — `(m + L, id_o)`: its reply is carried by a comm
//!   daemon whose next event is at or after the global runnable
//!   minimum `m`, and the reply rides a link of latency ≥ `L`; any
//!   request it makes after resuming is strictly later than `m + L`.
//! * **Barrier wait** — excluded: barrier exit requires every node to
//!   enter, *including the gated requester's*, which cannot happen
//!   before the gated grant completes — a request from `o` cannot
//!   precede the grant, by causality.
//! * **Daemons** — excluded: comm tasks never acquire application
//!   locks (their in-flight deliveries are covered through `m`).
//!
//! The gate passes iff `(at, rank) <` every bound. Bounds only grow as
//! virtual time advances, so a passed gate stays passed; and the
//! lexicographically least gated key always beats every other gated
//! key, so gate evaluation can never deadlock on its own — if nothing
//! is promotable while non-daemons are blocked, the cluster is
//! genuinely deadlocked and the engine panics with the reasons.

use super::task::{BlockReason, Task, TaskState};

/// Lower bound on the earliest virtual arrival (as a `(time, rank)`
/// key) of any future lock request by task `o`; `None` = can be ruled
/// out entirely.
fn bound(o: &Task, id: usize, m_plus_l: u64) -> Option<(u64, usize)> {
    if o.daemon {
        return None;
    }
    match o.state {
        TaskState::Finished => None,
        TaskState::Runnable | TaskState::Running => Some((o.ready_at, id)),
        TaskState::Blocked => match o.reason {
            BlockReason::Other => Some((o.ready_at, id)),
            BlockReason::Reply => Some((m_plus_l, id)),
            BlockReason::LockQueue { at, rank } | BlockReason::LockGate { at, rank } => {
                Some((at, rank))
            }
            BlockReason::Barrier => None,
            // Idle is daemon-only; unreachable for non-daemons, but
            // treat it conservatively as a generic block if it happens.
            BlockReason::Idle => Some((o.ready_at, id)),
        },
    }
}

/// Ids of gate-blocked tasks whose grant is now safe, evaluated
/// against a single snapshot of the task table (promoting one cannot
/// invalidate another: both keys beat every bound in the snapshot,
/// and a promoted task's future requests sort after its own key).
pub(crate) fn promotable(tasks: &[Task], lookahead: u64) -> Vec<usize> {
    let m = tasks
        .iter()
        .filter(|t| t.state == TaskState::Runnable)
        .map(|t| t.ready_at)
        .min()
        .unwrap_or(u64::MAX);
    let m_plus_l = m.saturating_add(lookahead);
    let mut out = Vec::new();
    'gated: for (id, t) in tasks.iter().enumerate() {
        let BlockReason::LockGate { at, rank } = t.reason else {
            continue;
        };
        if t.state != TaskState::Blocked {
            continue;
        }
        let key = (at, rank);
        for (oid, o) in tasks.iter().enumerate() {
            if oid == id {
                continue;
            }
            if let Some(b) = bound(o, oid, m_plus_l) {
                if b <= key {
                    continue 'gated;
                }
            }
        }
        out.push(id);
    }
    out
}
