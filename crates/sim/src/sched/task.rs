//! Task bookkeeping shared by the engine: state machine, block
//! reasons, and per-task counters.

use std::thread::Thread;

use crate::clock::SimClock;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskState {
    Runnable,
    Running,
    Blocked,
    Finished,
}

/// Why a blocked task is blocked.
///
/// The reason is load-bearing, not just diagnostic: the conservative
/// lock-grant gate (`crate::sched::lookahead`) classifies every
/// blocked task by reason to bound the earliest virtual instant at
/// which it could still issue a competing lock request, and the
/// deadlock detector prints it so a stuck run names what each task was
/// waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Generic block. Conservatively treated as able to act again at
    /// its block-time clock (same bound as a runnable task).
    Other,
    /// Waiting for a reply envelope forwarded by the node's comm task.
    /// Bounded below by `m + lookahead`: the reply is carried by a
    /// daemon whose next event is at or after the global minimum `m`,
    /// plus at least one wire latency.
    Reply,
    /// Enqueued in a lock's virtual-time waiter queue, behind the
    /// front. `at` is the request's virtual arrival at the lock
    /// service; `rank` the requester's node. Its next competing
    /// request cannot precede its current one.
    LockQueue { at: u64, rank: usize },
    /// Front of a lock's waiter queue, waiting for the conservative
    /// grant gate. Woken **only** by gate promotion at an epoch
    /// boundary (plain wakes are ignored), so a grant can never be
    /// observed before every competing earlier request is ruled out.
    LockGate { at: u64, rank: usize },
    /// Full-cluster barrier rendezvous. Excluded from the grant gate:
    /// barrier exit causally requires every node — including the gated
    /// requester — to enter first, so a barrier-blocked task cannot
    /// issue a lock request before the gated grant completes.
    Barrier,
    /// Idle daemon (comm task with no buffered messages). Parked at
    /// virtual infinity until a message or the shutdown poke arrives.
    Idle,
}

impl BlockReason {
    pub(crate) fn name(self) -> &'static str {
        match self {
            BlockReason::Other => "blocked",
            BlockReason::Reply => "reply-wait",
            BlockReason::LockQueue { .. } => "lock-queue",
            BlockReason::LockGate { .. } => "lock-gate",
            BlockReason::Barrier => "barrier-wait",
            BlockReason::Idle => "idle",
        }
    }
}

pub(crate) struct Task {
    pub name: String,
    pub clock: SimClock,
    /// Simulated node this task belongs to. At most one task per node
    /// runs per epoch (app and comm threads share the node clock).
    pub node: usize,
    pub daemon: bool,
    pub state: TaskState,
    /// Virtual instant ordering this task among runnables: its clock
    /// when it blocked (virtual infinity for idle daemons), min-merged
    /// with any wake hints (message arrival times) delivered since.
    pub ready_at: u64,
    /// Why the task is blocked (meaningful only in `Blocked`).
    pub reason: BlockReason,
    /// Sticky wake delivered while the task was running; consumed by
    /// its next block/yield, which then returns immediately.
    pub wake_pending: bool,
    /// Virtual horizon of the task's current turn: events strictly
    /// before it are safe to consume (set at dispatch).
    pub horizon: u64,
    /// The parked OS thread to unpark on dispatch (set by `attach`).
    pub thread: Option<Thread>,
    /// Worker-pool slot occupied while running (host accounting only).
    pub worker: usize,
    /// Times this task was dispatched.
    pub turns: u64,
    /// Wake calls aimed at this task.
    pub wakes: u64,
}

impl Task {
    pub(crate) fn new(name: String, clock: SimClock, node: usize, daemon: bool) -> Task {
        let ready_at = clock.now().nanos();
        Task {
            name,
            clock,
            node,
            daemon,
            state: TaskState::Runnable,
            ready_at,
            reason: BlockReason::Other,
            wake_pending: false,
            horizon: u64::MAX,
            thread: None,
            worker: 0,
            turns: 0,
            wakes: 0,
        }
    }

    /// The (ready, id) dispatch key this task sorts under.
    pub(crate) fn key(&self, id: usize) -> (u64, usize) {
        (self.ready_at, id)
    }
}
