//! Deterministic virtual-time scheduling — the conservative parallel
//! discrete-event engine.
//!
//! PR 3 introduced the *turnstile*: cooperative lowest-clock-first
//! execution, one task at a time, making whole cluster runs
//! bit-reproducible. This module generalizes it to a **conservative
//! parallel DES** without giving that up:
//!
//! > **Lookahead windows.** Let `m` be the smallest ready time among
//! > runnable tasks and `L` the network's minimum link latency. Every
//! > runnable task with ready time in `[m, m + L)` — at most one per
//! > node — may run *concurrently*, because no message sent inside
//! > the window can arrive before `m + L`: nothing any member does
//! > can land in a co-member's consumable past.
//!
//! The engine executes these window batches in **epochs** on a bounded
//! worker pool. [`SchedulerMode::Deterministic`] drains each batch one
//! task at a time in key order (the sequential oracle, byte-identical
//! to the turnstile discipline); [`SchedulerMode::Parallel`] unparks
//! up to `workers` members at once. Both modes run the *same* epoch
//! logic over the *same* batches, and every cross-task interaction is
//! made order-invariant within an epoch (arrival-ordered message
//! consumption under a horizon, virtual-time-ordered lock queues
//! behind a conservative grant gate, merge-folded barrier rendezvous)
//! — so the two modes produce byte-identical reports. The full safety
//! argument lives in [`engine`].
//!
//! Submodules: [`engine`] (epoch driver, handles, deadlock detector),
//! `queue` (per-node run queues and batch selection), `task` (task
//! state and [`BlockReason`]), `lookahead` (the conservative
//! lock-grant gate).
//!
//! # Integration contract
//!
//! * Each node thread registers a task ([`Scheduler::register`]) and
//!   calls [`SchedHandle::attach`] first thing on its thread.
//! * A task must never hold an application lock across
//!   [`SchedHandle::block`] — release, block, re-acquire (the wait
//!   loops in the sync services do exactly this).
//! * Whoever makes a blocked task's wait condition true calls
//!   [`SchedHandle::wake`]/[`SchedHandle::wake_at`] on it. Wakes are
//!   sticky: waking a *running* task makes its next `block` return
//!   immediately, so check-then-block races are lost-wakeup-free —
//!   including, under `Parallel`, races with co-members of the same
//!   epoch.
//! * Comm threads are registered as *daemons*: they may stay blocked
//!   forever without tripping the deadlock detector, and are woken
//!   externally at shutdown. A comm turn may only consume buffered
//!   messages with arrival strictly below [`SchedHandle::horizon`],
//!   in `(arrival, src, seq)` order, and parks to its next event with
//!   [`SchedHandle::yield_until`].

pub mod engine;
pub mod explore;
pub(crate) mod lookahead;
pub(crate) mod queue;
pub(crate) mod task;

pub use engine::{SchedHandle, Scheduler};
pub use explore::{Choice, ScheduleScript};
pub use task::BlockReason;

/// Which execution model a cluster runtime should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Sequential conservative DES: epochs are drained one task at a
    /// time in key order. Bit-reproducible runs, no wall-clock
    /// polling — the oracle the parallel engine is gated against.
    #[default]
    Deterministic,
    /// Conservative *parallel* DES: epoch batches execute on a worker
    /// pool of `workers` concurrently unparked tasks. Reports are
    /// byte-identical to [`SchedulerMode::Deterministic`] for the
    /// same options (gated by `tests/determinism.rs`); host wall time
    /// shrinks with available cores.
    Parallel { workers: usize },
    /// Sequential engine driven by a [`ScheduleScript`]: at every
    /// epoch whose batch has more than one member, the dispatch order
    /// is chosen by the script instead of the canonical ascending
    /// `(ready, id)` order. A DFS driver (see `lots-analyze`)
    /// enumerates up to `max_schedules` distinct dispatch orders —
    /// exactly the orders the conservative-lookahead safety argument
    /// claims are equivalent — and checks that every one produces the
    /// same report fingerprint (or exposes the same deadlock).
    /// `max_schedules` bounds the driver's enumeration; a single run
    /// under this mode behaves like [`SchedulerMode::Deterministic`]
    /// with a permuted within-epoch order.
    Explore { max_schedules: usize },
    /// The pre-PR-3 model: free-running threads, wall-clock receive
    /// timeouts, OS-scheduled condvar wakes. Virtual times vary a few
    /// percent run-to-run. Retained for host-nanosecond microbenches,
    /// where cooperative switching would pollute wall-time readings.
    FreeRunning,
}

impl SchedulerMode {
    /// Whether this mode runs on the virtual-time epoch engine
    /// (everything except [`SchedulerMode::FreeRunning`]).
    pub fn uses_engine(&self) -> bool {
        !matches!(self, SchedulerMode::FreeRunning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SimDuration, SimInstant};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex as StdMutex};

    fn turnstile() -> Arc<Scheduler> {
        // L = 0: every epoch is a solo batch — the PR 3 turnstile.
        Scheduler::new(SchedulerMode::Deterministic, SimDuration::ZERO)
    }

    fn log_push(log: &Arc<StdMutex<Vec<(usize, u64)>>>, id: usize, t: u64) {
        log.lock().unwrap().push((id, t));
    }

    #[test]
    fn lowest_ready_time_runs_first() {
        let sched = turnstile();
        let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut handles = Vec::new();
        // Tasks 0/1/2 start with clocks 30/10/20: expect 1, 2, 0.
        for (i, start) in [(0usize, 30u64), (1, 10), (2, 20)] {
            let clock = SimClock::new();
            clock.advance(SimDuration(start));
            let h = sched.register(format!("t{i}"), clock.clone(), i, false);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                h.attach();
                log_push(&log, i, clock.now().nanos());
                h.finish();
            }));
        }
        sched.launch();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(*log.lock().unwrap(), vec![(1, 10), (2, 20), (0, 30)]);
    }

    #[test]
    fn ping_pong_is_deterministic_and_clock_ordered() {
        // Two tasks alternate; each wakes the other, then blocks. The
        // interleaving must follow the clocks exactly, every run.
        let run = || {
            let sched = turnstile();
            let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
            let c0 = SimClock::new();
            let c1 = SimClock::new();
            let h0 = sched.register("a", c0.clone(), 0, false);
            let h1 = sched.register("b", c1.clone(), 1, false);
            let peers = [h1.clone(), h0.clone()];
            let mut threads = Vec::new();
            for (i, (h, c)) in [(h0, c0), (h1, c1)].into_iter().enumerate() {
                let log = Arc::clone(&log);
                let peer = peers[i].clone();
                threads.push(std::thread::spawn(move || {
                    h.attach();
                    for step in 0..4u64 {
                        log_push(&log, i, c.now().nanos());
                        // Task 0 takes bigger steps than task 1, so the
                        // engine must interleave them unevenly.
                        c.advance(SimDuration(if i == 0 { 30 } else { 10 } * (step + 1)));
                        peer.wake();
                        h.block();
                    }
                    peer.wake();
                    h.finish();
                }));
            }
            sched.launch();
            for t in threads {
                t.join().unwrap();
            }
            let log = log.lock().unwrap().clone();
            log
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same program, same schedule");
        // Every dispatch picked the lowest-clock runnable task: the
        // fast task (short steps) gets dispatched whenever its clock
        // trails, regardless of OS thread timing.
        assert_eq!(
            a,
            vec![
                (0, 0),
                (1, 0),
                (0, 30),
                (1, 10),
                (0, 90),
                (1, 30),
                (0, 180),
                (1, 60),
            ]
        );
    }

    #[test]
    fn sticky_wake_prevents_lost_wakeups() {
        let sched = turnstile();
        let c = SimClock::new();
        let h = sched.register("worker", c.clone(), 0, false);
        let ext = h.clone();
        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            h.attach();
            // Wait for the external wake to land while we are Running:
            // it must be recorded sticky so the block below returns
            // immediately instead of parking forever (there is no
            // other task to wake us).
            while !gate2.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let _ = c.now();
            h.block();
            h.finish();
        });
        sched.launch(); // dispatch: the task is Running from here on
        ext.wake(); // lands on a Running task → wake_pending
        gate.store(true, Ordering::Release);
        t.join().unwrap();
    }

    #[test]
    fn idle_scheduler_restarts_on_external_wake() {
        let sched = turnstile();
        let clock = SimClock::new();
        let h = sched.register("daemon", clock.clone(), 0, true);
        let stop = Arc::new(AtomicBool::new(false));
        let (hx, stop2) = (h.clone(), Arc::clone(&stop));
        let t = std::thread::spawn(move || {
            hx.attach();
            while !stop2.load(Ordering::Acquire) {
                hx.block_with(BlockReason::Idle);
            }
            hx.finish();
        });
        sched.launch();
        // The daemon blocks and the scheduler goes idle; an external
        // wake must restart dispatching.
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, Ordering::Release);
        h.wake();
        t.join().unwrap();
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let sched = turnstile();
        let c = SimClock::new();
        let h = sched.register("stuck", c, 0, false);
        let t = std::thread::spawn(move || {
            h.attach();
            h.block(); // nobody will ever wake us
            unreachable!("block must panic on deadlock");
        });
        sched.launch();
        let err = t.join().unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("virtual-time deadlock"), "got: {msg}");
    }

    #[test]
    fn deadlock_snapshot_names_block_reasons() {
        let sched = turnstile();
        let h = sched.register("lonely", SimClock::new(), 0, false);
        let t = std::thread::spawn(move || {
            h.attach();
            // A barrier wait that no peer will ever complete.
            h.block_with(BlockReason::Barrier);
            unreachable!("block must panic on deadlock");
        });
        sched.launch();
        let err = t.join().unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("barrier-wait"), "got: {msg}");
    }

    #[test]
    fn wake_at_orders_runnable_tasks() {
        // A controller wakes daemon 1 at t=500 and daemon 2 at t=100
        // while it is still running; once it finishes, the t=100
        // daemon must be dispatched first despite its higher id.
        let sched = turnstile();
        let log: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
        // The controller's clock starts at 10, so both daemons (at 0)
        // run — and block — before it is dispatched.
        let ctl_clock = SimClock::new();
        ctl_clock.advance(SimDuration(10));
        let ctl = sched.register("ctl", ctl_clock, 0, false);
        let mut daemons = Vec::new();
        let mut threads = Vec::new();
        for i in 1..=2usize {
            let c = SimClock::new();
            let h = sched.register(format!("d{i}"), c, i, true);
            daemons.push(h.clone());
            let log = Arc::clone(&log);
            threads.push(std::thread::spawn(move || {
                h.attach();
                h.block_with(BlockReason::Idle); // park until the hint arrives
                log_push(&log, i, 0);
                h.finish();
            }));
        }
        {
            let h = ctl.clone();
            let targets = daemons.clone();
            threads.push(std::thread::spawn(move || {
                h.attach();
                targets[0].wake_at(SimInstant(500));
                targets[1].wake_at(SimInstant(100));
                h.finish();
            }));
        }
        sched.launch();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            log.lock()
                .unwrap()
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            vec![2, 1]
        );
    }

    #[test]
    fn parallel_batches_really_run_concurrently() {
        // Two tasks inside one lookahead window rendezvous on shared
        // atomics: each signals it is running, then spins until the
        // other has signalled. Only genuine concurrency (both
        // dispatched in the same epoch) lets this complete.
        let sched = Scheduler::new(
            SchedulerMode::Parallel { workers: 2 },
            SimDuration::from_micros(95),
        );
        let flags = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
        let mut threads = Vec::new();
        for i in 0..2usize {
            let h = sched.register(format!("t{i}"), SimClock::new(), i, false);
            let flags = Arc::clone(&flags);
            threads.push(std::thread::spawn(move || {
                h.attach();
                flags[i].store(true, Ordering::Release);
                while !flags[1 - i].load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                h.finish();
            }));
        }
        sched.launch();
        for t in threads {
            t.join().unwrap();
        }
        let s = sched.summary();
        assert_eq!(s.max_concurrent, 2);
        assert_eq!(s.turns, 2);
        assert_eq!(s.epochs, 1);
        assert_eq!(s.worker_busy_ns.len(), 2);
    }

    #[test]
    fn horizon_is_infinite_solo_and_windowed_in_batches() {
        // Task 0 starts at clock 0, task 1 at 10 000, L = 1 000: each
        // first turn is solo (infinite horizon). Task 0 advances to
        // 10 000 and blocks; task 1 wakes it and yields to the same
        // instant — the next epoch is a two-member batch with horizon
        // m + L = 11 000.
        let sched = Scheduler::new(SchedulerMode::Parallel { workers: 2 }, SimDuration(1_000));
        let seen: Arc<StdMutex<Vec<(usize, u64)>>> = Arc::new(StdMutex::new(Vec::new()));
        let c0 = SimClock::new();
        let c1 = SimClock::new();
        c1.advance(SimDuration(10_000));
        let h0 = sched.register("t0", c0.clone(), 0, false);
        let h1 = sched.register("t1", c1.clone(), 1, false);
        let mut threads = Vec::new();
        {
            let (h, peer, seen) = (h0.clone(), h1.clone(), Arc::clone(&seen));
            threads.push(std::thread::spawn(move || {
                h.attach();
                seen.lock().unwrap().push((0, h.horizon().nanos()));
                c0.advance(SimDuration(10_000));
                let _ = peer; // task 1 is not registered runnable-first
                h.block(); // task 1 wakes us into the joint window
                seen.lock().unwrap().push((0, h.horizon().nanos()));
                h.finish();
            }));
        }
        {
            let (h, peer, seen) = (h1, h0, Arc::clone(&seen));
            threads.push(std::thread::spawn(move || {
                h.attach();
                seen.lock().unwrap().push((1, h.horizon().nanos()));
                peer.wake();
                h.yield_until(c1.now()); // runnable again at 10 000
                seen.lock().unwrap().push((1, h.horizon().nanos()));
                h.finish();
            }));
        }
        sched.launch();
        for t in threads {
            t.join().unwrap();
        }
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![(0, 11_000), (0, u64::MAX), (1, 11_000), (1, u64::MAX)]
        );
        assert_eq!(sched.summary().epochs, 3);
    }

    #[test]
    fn gate_promotion_waits_for_competitors() {
        // Task 0 parks on the lock-grant gate with key (100, 0). While
        // task 1 is still runnable at clock 0 it could yet issue an
        // earlier request, so the gate must hold; once task 1 blocks at
        // clock 5 000 its bound moves past the key and task 0 resumes.
        let sched = turnstile();
        let log: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let c1 = SimClock::new();
        let h0 = sched.register("gated", SimClock::new(), 0, false);
        let h1 = sched.register("rival", c1.clone(), 1, false);
        let mut threads = Vec::new();
        {
            let (h, peer, log) = (h0, h1.clone(), Arc::clone(&log));
            threads.push(std::thread::spawn(move || {
                h.attach();
                h.block_gated(SimInstant(100), 0);
                log.lock().unwrap().push("granted");
                peer.wake();
                h.finish();
            }));
        }
        {
            let (h, log) = (h1, Arc::clone(&log));
            threads.push(std::thread::spawn(move || {
                h.attach();
                c1.advance(SimDuration(5_000));
                log.lock().unwrap().push("rival-blocked");
                h.block();
                h.finish();
            }));
        }
        sched.launch();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*log.lock().unwrap(), vec!["rival-blocked", "granted"]);
    }
}
