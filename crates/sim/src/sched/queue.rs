//! Per-node run queues and epoch batch selection.
//!
//! An epoch's batch is chosen under one rule: a runnable task may join
//! the batch iff its ready time lies strictly inside the lookahead
//! window `[m, m + L)`, where `m` is the minimum ready time over all
//! runnable tasks and `L` the minimum link latency — no message sent
//! by any batch member can arrive before `m + L`, so nothing a member
//! does can land in a co-member's consumable past. Two refinements:
//!
//! * **One task per node.** App and comm tasks of a node share the
//!   node's clock (and its `NodeState`); only the node's min-key task
//!   joins, the other waits for a later epoch.
//! * **Never empty.** When the window admits nobody (`L = 0`, or a
//!   lone straggler), the global min-key task runs solo with an
//!   infinite horizon — the pure turnstile regime, trivially safe
//!   because nothing else runs.

use super::task::{Task, TaskState};

/// Outcome of batch selection: the chosen task ids in dispatch order
/// (ascending (ready, id)) and the epoch horizon.
pub(crate) struct Batch {
    pub members: Vec<usize>,
    pub horizon: u64,
}

/// Select the next epoch's batch. Returns `None` when nothing is
/// runnable (idle, or deadlock — the caller distinguishes).
pub(crate) fn select(tasks: &[Task], lookahead: u64) -> Option<Batch> {
    // Per-node minima first: at most one task per node may run.
    let mut per_node: Vec<(u64, usize)> = Vec::new(); // (ready, id), min per node
    for (id, t) in tasks.iter().enumerate() {
        if t.state != TaskState::Runnable {
            continue;
        }
        let key = t.key(id);
        match per_node.iter_mut().find(|(_, i)| tasks[*i].node == t.node) {
            Some(slot) => {
                if key < (slot.0, slot.1) {
                    *slot = key;
                }
            }
            None => per_node.push(key),
        }
    }
    let &(m, min_id) = per_node.iter().min()?;
    let bound = m.saturating_add(lookahead);
    let mut members: Vec<(u64, usize)> = per_node
        .iter()
        .copied()
        .filter(|&(ready, _)| ready < bound)
        .collect();
    if members.is_empty() {
        members.push((m, min_id));
    }
    members.sort_unstable();
    let horizon = if members.len() == 1 { u64::MAX } else { bound };
    Some(Batch {
        members: members.into_iter().map(|(_, id)| id).collect(),
        horizon,
    })
}
