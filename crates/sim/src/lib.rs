//! `lots-sim` — virtual-time substrate for the LOTS reproduction.
//!
//! The original paper evaluates LOTS on a 16-node Pentium IV cluster
//! with 100 Mb Fast Ethernet and local IDE/SCSI disks. This crate
//! replaces that hardware with *cost models over virtual time*: every
//! simulated DSM process owns a monotonic [`SimClock`] advanced by the
//! CPU / network / disk models in [`cost`], with calibrated per-platform
//! bundles in [`machine`] and per-category accounting in [`stats`].
//!
//! Protocols and applications in the other crates run for real — real
//! bytes are diffed, shipped and swapped — while time is charged through
//! these models, which is what lets a laptop-scale run reproduce the
//! *shape* of the paper's cluster results.

pub mod clock;
pub mod cost;
pub mod diskq;
pub mod fault;
pub mod machine;
pub mod sched;
pub mod stats;
pub mod topology;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use cost::{CpuModel, DiskModel, NetModel};
pub use diskq::{DiskOp, DiskQueue};
pub use fault::{CrashFault, Delivery, FaultPlan, PanicFault, Partition, Retransmit};
pub use machine::MachineConfig;
pub use sched::{BlockReason, Choice, SchedHandle, ScheduleScript, Scheduler, SchedulerMode};
pub use stats::{NodeStats, SchedSummary, TimeCategory, ALL_CATEGORIES};
pub use topology::{LinkParams, Topology};
