//! `lots-net` — simulated cluster interconnect for the LOTS reproduction.
//!
//! Models the paper's transport (§3.6): dedicated point-to-point UDP
//! channels, ≤64 KB datagrams with real fragmentation and receiver-side
//! reassembly (§5), a sliding-window flow-control timing model, and
//! per-node traffic statistics. Messages move between node threads over
//! in-process channels; virtual transfer times come from the
//! [`lots_sim::NetModel`] in force.

pub mod droplog;
pub mod endpoint;
pub mod flow;
pub mod fragment;
pub mod message;
pub mod stats;

pub use droplog::DropLog;
pub use endpoint::{cluster, cluster_ext, cluster_net, ClusterNet, NetReceiver, NetSender, Recv};
pub use flow::{LinkClock, Transmission};
pub use fragment::{split, Fragment, Reassembler};
pub use message::{Buffered, Envelope, NodeId, WireSize, FRAGMENT_HEADER_BYTES};
pub use stats::TrafficStats;
