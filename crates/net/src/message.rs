//! Message envelopes and wire-size accounting.
//!
//! Nodes in this reproduction live in one OS process, so no bytes are
//! actually serialized onto a wire. What the virtual-time model needs is
//! the *size the message would have had* on the paper's UDP transport;
//! the [`WireSize`] trait supplies that for protocol headers, while bulk
//! data (object copies, diffs) travels as a real [`Bytes`] payload whose
//! length counts directly.

use bytes::Bytes;
use lots_sim::SimInstant;

/// Index of a node (process) in the simulated cluster.
pub type NodeId = usize;

/// Size, in bytes, this value would occupy in a UDP datagram.
///
/// Implementations should approximate a compact C-struct encoding:
/// fixed-size headers plus any variable-length tables. Payload bytes
/// carried alongside the header are accounted separately.
pub trait WireSize {
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

/// A fully reassembled incoming message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Protocol header.
    pub msg: M,
    /// Bulk payload (object data, diffs); may be empty.
    pub payload: Bytes,
    /// Virtual time at which the sender issued the message.
    pub sent_at: SimInstant,
    /// Virtual time at which the *last fragment* reached the receiver —
    /// i.e. when the message can be decoded (§5: the receiver must
    /// collect every fragment before rebuilding the message).
    pub arrival: SimInstant,
    /// Total modeled wire bytes (header + payload + per-fragment headers).
    pub wire_bytes: usize,
    /// Number of UDP fragments the message was split into.
    pub fragments: u32,
    /// Sender-side send sequence number: position of this message in
    /// the total order of everything `src` has ever sent (to any
    /// destination). `(arrival, src, seq)` is therefore a unique,
    /// schedule-independent key — comm loops use it to consume buffered
    /// messages in a deterministic order under the parallel engine.
    pub seq: u64,
}

/// Per-fragment UDP/LOTS header overhead, modeled after a UDP header
/// plus the sequence/reassembly fields a runtime DSM prepends.
pub const FRAGMENT_HEADER_BYTES: usize = 28;

/// A received envelope buffered in virtual-arrival order.
///
/// The key `(arrival, src, seq)` is unique and schedule-independent, so
/// the service order of concurrently delivered messages is a pure
/// function of virtual time — the parallel engine and the sequential
/// oracle drain the buffer identically. `Ord` is reversed so that a
/// `std::collections::BinaryHeap<Buffered<M>>` pops the *earliest* key.
#[derive(Debug)]
pub struct Buffered<M> {
    key: (u64, NodeId, u64),
    env: Envelope<M>,
}

impl<M> Buffered<M> {
    pub fn new(env: Envelope<M>) -> Buffered<M> {
        Buffered {
            key: (env.arrival.nanos(), env.src, env.seq),
            env,
        }
    }

    /// Virtual arrival time of the buffered envelope, in nanoseconds.
    pub fn arrival_ns(&self) -> u64 {
        self.key.0
    }

    /// Consume the wrapper, yielding the envelope.
    pub fn into_env(self) -> Envelope<M> {
        self.env
    }
}

impl<M> PartialEq for Buffered<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Buffered<M> {}
impl<M> PartialOrd for Buffered<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Buffered<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest key.
        other.key.cmp(&self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_header_is_zero_sized() {
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn envelope_is_cloneable() {
        let e = Envelope {
            src: 3,
            msg: (),
            payload: Bytes::from_static(b"abc"),
            sent_at: SimInstant(5),
            arrival: SimInstant(10),
            wire_bytes: 31,
            fragments: 1,
            seq: 0,
        };
        let f = e.clone();
        assert_eq!(f.src, 3);
        assert_eq!(&f.payload[..], b"abc");
        assert_eq!(f.arrival, SimInstant(10));
    }
}
