//! Endpoints: the per-node handle on the simulated interconnect.
//!
//! An endpoint is split into a shareable [`NetSender`] (the app
//! thread and the comm thread both send) and a single-consumer
//! [`NetReceiver`] (only the comm thread — the paper's SIGIO handler —
//! receives). Large payloads are really fragmented at the sender and
//! really reassembled at the receiver, with virtual-time stamps from the
//! per-link [`LinkClock`]s.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use lots_sim::{Delivery, FaultPlan, NetModel, SchedHandle, SimDuration, SimInstant, Topology};

use crate::droplog::DropLog;
use crate::flow::{LinkClock, Transmission};
use crate::fragment::{split, Fragment, Reassembler};
use crate::message::{Envelope, NodeId, WireSize};
use crate::stats::TrafficStats;

/// What actually travels over a channel: one fragment, with the header
/// riding on fragment 0.
#[derive(Debug, Clone)]
struct Packet<M> {
    src: NodeId,
    header: Option<M>,
    frag: Fragment,
    sent_at: SimInstant,
    arrival: SimInstant,
    wire_bytes: usize,
    fragments: u32,
}

/// One channel element: a data fragment, or an out-of-band poke that
/// makes a blocked receiver return immediately (used for prompt
/// shutdown instead of waiting out the receive timeout).
#[derive(Debug, Clone)]
enum Wire<M> {
    Pkt(Packet<M>),
    Wake,
}

/// Sending half; cheap to clone and share between threads of one node.
pub struct NetSender<M> {
    id: NodeId,
    model: NetModel,
    /// Per-link latency/bandwidth overrides over `model`.
    topo: Arc<Topology>,
    txs: Arc<Vec<Sender<Wire<M>>>>,
    links: Arc<Vec<LinkClock>>,
    seq: Arc<AtomicU64>,
    stats: TrafficStats,
    /// Deterministic mode: the comm task of each node, woken (with the
    /// message's virtual arrival time) whenever something is sent to it.
    wakers: Option<Arc<Vec<SchedHandle>>>,
    /// Seeded per-message loss/delay/dup/reorder injection.
    faults: Option<Arc<FaultPlan>>,
    /// Messages whose every transmission attempt was lost.
    drops: DropLog,
}

impl<M> Clone for NetSender<M> {
    fn clone(&self) -> Self {
        NetSender {
            id: self.id,
            model: self.model,
            topo: Arc::clone(&self.topo),
            txs: Arc::clone(&self.txs),
            links: Arc::clone(&self.links),
            seq: Arc::clone(&self.seq),
            stats: self.stats.clone(),
            wakers: self.wakers.clone(),
            faults: self.faults.clone(),
            drops: self.drops.clone(),
        }
    }
}

impl<M: WireSize + Send + 'static> NetSender<M> {
    /// Transmit `msg` + `payload` to `dst`, offered at sender virtual
    /// time `now`. Returns the modeled transmission timing; the caller
    /// decides which parts of it to charge to its clock.
    ///
    /// Under a lossy fault plan the reliable layer is folded in
    /// analytically: the returned `arrival` already includes every
    /// retransmission timeout the seeded loss/partition decisions cost
    /// this message, and a message whose retry budget is exhausted
    /// enqueues nothing at all (the drop is recorded for the deadlock
    /// snapshot). Faults only ever *add* delay, so the conservative
    /// lookahead bound — arrival ≥ send + minimum link latency — holds
    /// under every plan.
    pub fn send(&self, dst: NodeId, msg: M, payload: Bytes, now: SimInstant) -> Transmission {
        assert_ne!(dst, self.id, "node {} sending to itself", self.id);
        let body = msg.wire_size() + payload.len();
        let eff = self.topo.effective(&self.model, self.id, dst);
        let mut tx = self.links[dst].transmit(&eff, now, body);
        self.stats.record_send(tx.wire_bytes, tx.fragments);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut dup_idx = None;
        let mut shift = 0u64;
        if let Some(f) = &self.faults {
            // Injected in-flight jitter and reordering hold-back:
            // stretch the arrival only (the sender's link occupancy is
            // unaffected).
            tx.arrival += f.delay_for(self.id, dst, seq);
            let fallback = SimDuration(4 * eff.latency.0 + 4 * eff.per_fragment.0);
            let reorder = f.reorder_delay_for(self.id, dst, seq, fallback);
            shift = reorder.0;
            tx.arrival += reorder;
            let flight = tx.arrival.saturating_sub(tx.depart);
            match f.delivery(self.id, dst, seq, tx.depart, flight) {
                Delivery::Deliver {
                    arrival,
                    retransmits,
                } => {
                    if retransmits > 0 {
                        self.stats.record_retransmits(retransmits);
                    }
                    tx.arrival = arrival;
                }
                Delivery::Dropped { .. } => {
                    self.stats.record_drop();
                    self.drops.record(self.id, dst, seq);
                    return tx;
                }
            }
            dup_idx = f.dup_index_for(self.id, dst, seq, self.model.fragments(payload.len()));
        }
        let max_frag_payload = self.model.max_datagram;
        let mut frags = split(seq, &payload, max_frag_payload);
        debug_assert_eq!(frags.len() as u32, self.model.fragments(payload.len()));
        let n = frags.len();
        if n > 1 && shift > 0 {
            // Reordered messages also scramble their own fragments'
            // channel order (reassembly is by index, so this only
            // exercises the receive path's out-of-order tolerance).
            frags.rotate_left(shift as usize % n);
        }
        let mut header = Some(msg);
        for frag in frags {
            let copy = (dup_idx == Some(frag.index)).then(|| Packet {
                src: self.id,
                header: None,
                frag: frag.clone(),
                sent_at: now,
                arrival: tx.arrival,
                wire_bytes: tx.wire_bytes / n,
                fragments: tx.fragments,
            });
            let pkt = Packet {
                src: self.id,
                header: header.take(),
                frag,
                sent_at: now,
                arrival: tx.arrival,
                wire_bytes: tx.wire_bytes / n,
                fragments: tx.fragments,
            };
            // Unbounded channel: never blocks, so no deadlock between
            // comm threads that send while servicing.
            self.txs[dst]
                .send(Wire::Pkt(pkt))
                .expect("destination endpoint dropped while cluster running");
            if let Some(c) = copy {
                // Duplicate in flight, right behind the original.
                self.stats.record_dup_sent();
                self.txs[dst]
                    .send(Wire::Pkt(c))
                    .expect("destination endpoint dropped while cluster running");
            }
        }
        if let Some(w) = &self.wakers {
            w[dst].wake_at(tx.arrival);
        }
        tx
    }

    /// Poke `dst`'s receiver so a blocked `recv_timeout` returns
    /// [`Recv::Timeout`] immediately (and, in deterministic mode, its
    /// comm task is woken). Used for prompt shutdown: the receiver
    /// re-checks its shutdown flag instead of sleeping out the poll
    /// interval. Sending to a dropped endpoint is a no-op.
    pub fn wake(&self, dst: NodeId) {
        let _ = self.txs[dst].send(Wire::Wake);
        if let Some(w) = &self.wakers {
            w[dst].wake();
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.txs.len()
    }

    /// The network model in force.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// Traffic counters for this node.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

/// Receiving half; owned by exactly one thread (the comm thread).
pub struct NetReceiver<M> {
    id: NodeId,
    rx: Receiver<Wire<M>>,
    reasm: Reassembler,
    headers: HashMap<(NodeId, u64), PendingHeader<M>>,
    stats: TrafficStats,
    /// Dedupe filter keyed by the schedule-independent `(src, seq)`
    /// message identity: `Some` only when the fault plan can duplicate
    /// traffic, so fault-free runs pay nothing. Grows with the message
    /// count — acceptable for bounded simulated runs.
    delivered: Option<BTreeSet<(NodeId, u64)>>,
}

struct PendingHeader<M> {
    msg: M,
    sent_at: SimInstant,
    arrival: SimInstant,
    wire_bytes: usize,
    fragments: u32,
}

/// Outcome of a receive attempt.
pub enum Recv<M> {
    /// A complete message was reassembled.
    Message(Envelope<M>),
    /// Timed out with no complete message.
    Timeout,
    /// All senders disconnected — the cluster is shutting down.
    Disconnected,
}

impl<M: WireSize> NetReceiver<M> {
    /// Block up to `timeout` for the next *complete* message.
    ///
    /// Fragments of interleaved large messages are absorbed until one
    /// message has all its pieces (§5: no decoding of partial messages).
    ///
    /// Host-time audit: this wall-clock deadline is only reachable from
    /// the *free-running* comm loops (`SchedulerMode::FreeRunning`),
    /// which poll as a shutdown safety net. The virtual-time engine
    /// paths never call it — they use [`NetReceiver::try_recv`] plus
    /// scheduler parking (`yield_until`/`block_with`), so no engine-mode
    /// schedule ever depends on a host clock.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Recv<M> {
        // det:allow(host-time): free-running-mode poll deadline only;
        // engine modes use try_recv + virtual-time parking (see above).
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let pkt = match self.rx.recv_deadline(deadline) {
                Ok(Wire::Pkt(p)) => p,
                // Out-of-band poke: report an early timeout so the
                // caller re-checks its shutdown flag immediately.
                Ok(Wire::Wake) => return Recv::Timeout,
                Err(RecvTimeoutError::Timeout) => return Recv::Timeout,
                Err(RecvTimeoutError::Disconnected) => return Recv::Disconnected,
            };
            if let Some(env) = self.absorb(pkt) {
                return Recv::Message(env);
            }
        }
    }

    /// Non-blocking poll for a complete message. Wake pokes are
    /// swallowed (the caller is already awake).
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        while let Ok(wire) = self.rx.try_recv() {
            let Wire::Pkt(pkt) = wire else { continue };
            if let Some(env) = self.absorb(pkt) {
                return Some(env);
            }
        }
        None
    }

    fn absorb(&mut self, pkt: Packet<M>) -> Option<Envelope<M>> {
        let key = (pkt.src, pkt.frag.msg_seq);
        if let Some(done) = &self.delivered {
            // Whole-message duplicate (or a stray fragment of an
            // already-completed message): filter before reassembly so
            // it can neither deliver twice nor leave a ghost partial.
            if done.contains(&key) {
                self.stats.record_dup_filtered();
                return None;
            }
        }
        if self.reasm.already_has(pkt.src, &pkt.frag) {
            // Duplicate fragment of a still-incomplete message.
            self.stats.record_dup_filtered();
            return None;
        }
        if let Some(msg) = pkt.header {
            self.headers.insert(
                key,
                PendingHeader {
                    msg,
                    sent_at: pkt.sent_at,
                    arrival: pkt.arrival,
                    wire_bytes: pkt.wire_bytes * pkt.fragments as usize,
                    fragments: pkt.fragments,
                },
            );
        }
        let seq = pkt.frag.msg_seq;
        let payload = self.reasm.push(pkt.src, pkt.frag)?;
        if let Some(done) = &mut self.delivered {
            done.insert(key);
        }
        let h = self
            .headers
            .remove(&key)
            .expect("header fragment precedes or accompanies completion");
        self.stats.record_recv(h.wire_bytes);
        Some(Envelope {
            src: pkt.src,
            msg: h.msg,
            payload,
            sent_at: h.sent_at,
            arrival: h.arrival,
            wire_bytes: h.wire_bytes,
            fragments: h.fragments,
            seq,
        })
    }

    /// Messages awaiting more fragments (the §5 memory cost).
    pub fn pending_reassemblies(&self) -> usize {
        self.reasm.pending()
    }

    pub fn id(&self) -> NodeId {
        self.id
    }
}

/// Build the two halves of one node's endpoint.
#[allow(clippy::too_many_arguments)]
fn endpoint_pair<M>(
    id: NodeId,
    model: NetModel,
    topo: Arc<Topology>,
    txs: Vec<Sender<Wire<M>>>,
    rx: Receiver<Wire<M>>,
    wakers: Option<Arc<Vec<SchedHandle>>>,
    faults: Option<Arc<FaultPlan>>,
    drops: DropLog,
) -> (NetSender<M>, NetReceiver<M>) {
    let stats = TrafficStats::new();
    let links = Arc::new((0..txs.len()).map(|_| LinkClock::new()).collect::<Vec<_>>());
    let dedupe = faults.as_deref().is_some_and(FaultPlan::needs_dedupe);
    (
        NetSender {
            id,
            model,
            topo,
            txs: Arc::new(txs),
            links,
            seq: Arc::new(AtomicU64::new(0)),
            stats: stats.clone(),
            wakers,
            faults,
            drops,
        },
        NetReceiver {
            id,
            rx,
            reasm: Reassembler::new(),
            headers: HashMap::new(),
            stats,
            delivered: dedupe.then(BTreeSet::new),
        },
    )
}

/// A fully built cluster interconnect: the per-node endpoints plus the
/// shared log of irrecoverably dropped messages (for the deadlock
/// detector's diagnostics).
pub struct ClusterNet<M> {
    pub endpoints: Vec<(NetSender<M>, NetReceiver<M>)>,
    pub drops: DropLog,
}

/// Build a fully connected cluster of `n` endpoints.
pub fn cluster<M: WireSize + Send + 'static>(
    n: usize,
    model: NetModel,
) -> Vec<(NetSender<M>, NetReceiver<M>)> {
    cluster_ext(n, model, None, None)
}

/// [`cluster`] with the deterministic-mode hooks: `wakers` holds the
/// scheduler task of each node's receiver (its comm task), woken with
/// the virtual arrival time on every send addressed to it; `faults`
/// injects seeded per-message delays/loss/duplication/reordering. Uses
/// the uniform topology and discards the drop log.
pub fn cluster_ext<M: WireSize + Send + 'static>(
    n: usize,
    model: NetModel,
    wakers: Option<Vec<SchedHandle>>,
    faults: Option<Arc<FaultPlan>>,
) -> Vec<(NetSender<M>, NetReceiver<M>)> {
    cluster_net(n, model, Topology::uniform(), wakers, faults).endpoints
}

/// The full-feature cluster constructor: [`cluster_ext`] plus per-link
/// topology overrides, returning the drop log alongside the endpoints.
pub fn cluster_net<M: WireSize + Send + 'static>(
    n: usize,
    model: NetModel,
    topology: Topology,
    wakers: Option<Vec<SchedHandle>>,
    faults: Option<Arc<FaultPlan>>,
) -> ClusterNet<M> {
    assert!(n >= 1, "cluster needs at least one node");
    if let Some(w) = &wakers {
        assert_eq!(w.len(), n, "one waker per node");
    }
    let wakers = wakers.map(Arc::new);
    let topo = Arc::new(topology);
    let drops = DropLog::new();
    let mut txs: Vec<Vec<Sender<Wire<M>>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut rxs: Vec<Receiver<Wire<M>>> = Vec::with_capacity(n);
    for _dst in 0..n {
        let (tx, rx) = channel::unbounded::<Wire<M>>();
        rxs.push(rx);
        for sender_txs in txs.iter_mut() {
            sender_txs.push(tx.clone());
        }
    }
    let endpoints = txs
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(id, (tx, rx))| {
            endpoint_pair(
                id,
                model,
                Arc::clone(&topo),
                tx,
                rx,
                wakers.clone(),
                faults.clone(),
                drops.clone(),
            )
        })
        .collect();
    ClusterNet { endpoints, drops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u32);

    impl WireSize for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    fn model() -> NetModel {
        NetModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 10_000_000,
            per_fragment: SimDuration::from_micros(10),
            max_datagram: 4096,
            window_frags: 8,
        }
    }

    #[test]
    fn small_message_roundtrip() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = {
            let (s, r) = eps.remove(0);
            (s, r)
        };
        let t = tx1.send(0, TestMsg(42), Bytes::from_static(b"hello"), SimInstant(0));
        assert_eq!(t.fragments, 1);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(env) => {
                assert_eq!(env.src, 1);
                assert_eq!(env.msg, TestMsg(42));
                assert_eq!(&env.payload[..], b"hello");
                assert_eq!(env.arrival, t.arrival);
            }
            _ => panic!("expected message"),
        }
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let payload: Bytes = (0..20_000u32)
            .map(|i| (i % 256) as u8)
            .collect::<Vec<_>>()
            .into();
        let t = tx1.send(0, TestMsg(7), payload.clone(), SimInstant(0));
        assert!(t.fragments >= 5, "fragments={}", t.fragments);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(env) => {
                assert_eq!(env.payload, payload);
                assert_eq!(env.fragments, t.fragments);
            }
            _ => panic!("expected message"),
        }
        assert_eq!(rx0.pending_reassemblies(), 0);
    }

    #[test]
    fn messages_from_same_sender_keep_order_and_serialize() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let t1 = tx1.send(0, TestMsg(1), Bytes::from(vec![0u8; 8000]), SimInstant(0));
        let t2 = tx1.send(0, TestMsg(2), Bytes::from(vec![1u8; 100]), SimInstant(0));
        // Link serialization: second departs after first finishes.
        assert!(t2.arrival > t1.arrival);
        let a = match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(e) => e,
            _ => panic!(),
        };
        let b = match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(e) => e,
            _ => panic!(),
        };
        assert_eq!(a.msg, TestMsg(1));
        assert_eq!(b.msg, TestMsg(2));
    }

    #[test]
    fn timeout_when_no_traffic() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (_, mut rx0) = eps.remove(0);
        match rx0.recv_timeout(Duration::from_millis(10)) {
            Recv::Timeout => {}
            _ => panic!("expected timeout"),
        }
    }

    #[test]
    fn wake_poke_cuts_receive_timeout_short() {
        // Shutdown latency: a blocked receiver returns as soon as it is
        // poked, not after its (here huge) poll timeout.
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let t = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            match rx0.recv_timeout(Duration::from_secs(30)) {
                Recv::Timeout => started.elapsed(),
                _ => panic!("expected early timeout from the wake poke"),
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        tx1.wake(0);
        let waited = t.join().unwrap();
        assert!(waited < Duration::from_secs(5), "poke ignored: {waited:?}");
    }

    #[test]
    fn fault_delays_stretch_arrival_only() {
        use lots_sim::{FaultPlan, SimDuration};
        let max = SimDuration::from_millis(5);
        let plain = cluster::<TestMsg>(2, model());
        let faulty =
            cluster_ext::<TestMsg>(2, model(), None, Some(Arc::new(FaultPlan::delays(7, max))));
        let send = |eps: &[(NetSender<TestMsg>, NetReceiver<TestMsg>)]| {
            eps[1]
                .0
                .send(0, TestMsg(1), Bytes::from_static(b"x"), SimInstant(0))
        };
        let a = send(&plain);
        let b = send(&faulty);
        assert_eq!(a.sender_free, b.sender_free, "link occupancy unchanged");
        assert!(b.arrival >= a.arrival);
        assert!(b.arrival.saturating_sub(a.arrival) <= max);
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (_, mut rx0) = eps.remove(0);
        drop(eps); // drops node 1's sender (and node 0's own sender clone)
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Disconnected => {}
            _ => panic!("expected disconnect"),
        }
    }

    #[test]
    fn stats_count_both_directions() {
        let mut eps = cluster::<TestMsg>(3, model());
        let (tx2, _) = eps.remove(2);
        let (_, mut rx0) = eps.remove(0);
        tx2.send(0, TestMsg(9), Bytes::from(vec![0u8; 1000]), SimInstant(0));
        assert_eq!(tx2.stats().msgs_sent(), 1);
        assert!(tx2.stats().bytes_sent() >= 1000);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(_) => {}
            _ => panic!(),
        }
    }

    #[test]
    fn topology_overrides_one_link_only() {
        use lots_sim::LinkParams;
        let slow = LinkParams {
            latency: SimDuration::from_millis(2),
            bandwidth_bps: 1_000_000,
        };
        let topo = Topology::uniform().with_link(1, 0, slow);
        let net = cluster_net::<TestMsg>(3, model(), topo, None, None);
        let eps = net.endpoints;
        let t_slow = eps[1]
            .0
            .send(0, TestMsg(1), Bytes::from_static(b"x"), SimInstant(0));
        let t_fast = eps[2]
            .0
            .send(0, TestMsg(1), Bytes::from_static(b"x"), SimInstant(0));
        // Same payload, same offer time: only the overridden link pays
        // the 2 ms latency and the 1 MB/s wire time.
        assert!(t_slow.arrival.0 >= 2_000_000);
        assert!(t_slow.arrival > t_fast.arrival);
        assert!(net.drops.is_empty());
    }

    #[test]
    fn loss_with_retransmission_delays_but_delivers_everything() {
        use lots_sim::FaultPlan;
        let plan = FaultPlan {
            seed: 5,
            loss_permille: 400,
            ..FaultPlan::default()
        };
        let net =
            cluster_net::<TestMsg>(2, model(), Topology::uniform(), None, Some(Arc::new(plan)));
        let mut eps = net.endpoints;
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        for k in 0..50u32 {
            tx1.send(
                0,
                TestMsg(k),
                Bytes::from(vec![k as u8; 100]),
                SimInstant(0),
            );
        }
        for _ in 0..50 {
            match rx0.recv_timeout(Duration::from_secs(5)) {
                Recv::Message(_) => {}
                _ => panic!("retransmission must deliver every message"),
            }
        }
        assert!(tx1.stats().msgs_retransmitted() > 0, "40% loss, 50 msgs");
        assert_eq!(tx1.stats().msgs_dropped(), 0);
        assert!(net.drops.is_empty());
    }

    #[test]
    fn loss_without_retransmission_drops_and_logs() {
        use lots_sim::{FaultPlan, Retransmit};
        let plan = FaultPlan {
            seed: 5,
            loss_permille: 400,
            retransmit: Retransmit {
                enabled: false,
                ..Retransmit::default()
            },
            ..FaultPlan::default()
        };
        let net =
            cluster_net::<TestMsg>(2, model(), Topology::uniform(), None, Some(Arc::new(plan)));
        let mut eps = net.endpoints;
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        for k in 0..50u32 {
            tx1.send(0, TestMsg(k), Bytes::from_static(b"y"), SimInstant(0));
        }
        let mut got = 0;
        while let Recv::Message(_) = rx0.recv_timeout(Duration::from_millis(50)) {
            got += 1;
        }
        let dropped = tx1.stats().msgs_dropped();
        assert!(dropped > 0, "40% loss with no retries must drop");
        assert_eq!(got + dropped, 50);
        assert_eq!(net.drops.len() as u64, dropped);
        let rendered = net.drops.render();
        let (src, dst, seq) = net.drops.entries()[0];
        assert!(rendered.contains(&format!("node {src} -> node {dst} seq {seq}")));
    }

    #[test]
    fn duplicates_are_injected_and_filtered() {
        use lots_sim::FaultPlan;
        let plan = FaultPlan {
            seed: 2,
            dup_permille: 900,
            ..FaultPlan::default()
        };
        let net =
            cluster_net::<TestMsg>(2, model(), Topology::uniform(), None, Some(Arc::new(plan)));
        let mut eps = net.endpoints;
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        // Mix of single-fragment (whole-message dup) and multi-fragment
        // (duplicate-fragment) messages.
        for k in 0..20u32 {
            let len = if k % 2 == 0 { 64 } else { 9000 };
            tx1.send(
                0,
                TestMsg(k),
                Bytes::from(vec![k as u8; len]),
                SimInstant(0),
            );
        }
        let mut got = 0;
        while let Recv::Message(env) = rx0.recv_timeout(Duration::from_millis(100)) {
            assert_eq!(env.payload[0], env.msg.0 as u8);
            got += 1;
        }
        assert_eq!(got, 20, "each message delivered exactly once");
        assert!(tx1.stats().dups_sent() > 0, "90% dup rate over 20 msgs");
        assert_eq!(rx0.stats.dups_filtered(), tx1.stats().dups_sent());
        assert_eq!(rx0.pending_reassemblies(), 0, "no ghost partials");
    }

    #[test]
    fn reordering_scrambles_arrivals_but_loses_nothing() {
        use lots_sim::FaultPlan;
        let plan = FaultPlan {
            seed: 8,
            reorder_permille: 500,
            reorder_window: SimDuration::from_millis(2),
            ..FaultPlan::default()
        };
        let net =
            cluster_net::<TestMsg>(2, model(), Topology::uniform(), None, Some(Arc::new(plan)));
        let mut eps = net.endpoints;
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let mut arrivals = Vec::new();
        for k in 0..40u32 {
            let len = if k % 4 == 0 { 9000 } else { 32 };
            let t = tx1.send(0, TestMsg(k), Bytes::from(vec![0u8; len]), SimInstant(0));
            arrivals.push(t.arrival);
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "hold-back delays must invert some arrival order"
        );
        for _ in 0..40 {
            match rx0.recv_timeout(Duration::from_secs(5)) {
                Recv::Message(_) => {}
                _ => panic!("reordering must not lose messages"),
            }
        }
        assert_eq!(rx0.pending_reassemblies(), 0);
    }

    #[test]
    fn partition_with_retransmission_delivers_after_heal() {
        use lots_sim::{FaultPlan, Partition};
        let plan = FaultPlan {
            partitions: vec![Partition {
                start: SimInstant(0),
                end: SimInstant(50_000_000),
                islanders: vec![0],
            }],
            ..FaultPlan::default()
        };
        let net =
            cluster_net::<TestMsg>(2, model(), Topology::uniform(), None, Some(Arc::new(plan)));
        let mut eps = net.endpoints;
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let t = tx1.send(0, TestMsg(3), Bytes::from_static(b"z"), SimInstant(0));
        assert!(
            t.arrival >= SimInstant(50_000_000),
            "delivery {} must wait out the partition",
            t.arrival
        );
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(env) => assert_eq!(env.arrival, t.arrival),
            _ => panic!("expected delivery after heal"),
        }
        assert!(tx1.stats().msgs_retransmitted() > 0);
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx0, _) = eps.remove(0);
        tx0.send(0, TestMsg(0), Bytes::new(), SimInstant(0));
    }

    #[test]
    fn concurrent_senders_to_one_receiver() {
        let eps = cluster::<TestMsg>(4, model());
        let mut it = eps.into_iter();
        let (_, mut rx0) = it.next().unwrap();
        let senders: Vec<_> = it.map(|(s, _)| s).collect();
        let mut handles = Vec::new();
        for (i, s) in senders.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                for k in 0..25u32 {
                    s.send(
                        0,
                        TestMsg(k),
                        Bytes::from(vec![i as u8; 6000]),
                        SimInstant(0),
                    );
                }
            }));
        }
        let mut got = 0;
        while got < 75 {
            match rx0.recv_timeout(Duration::from_secs(5)) {
                Recv::Message(env) => {
                    assert_eq!(env.payload.len(), 6000);
                    got += 1;
                }
                _ => panic!("lost messages: only {got}"),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
