//! Endpoints: the per-node handle on the simulated interconnect.
//!
//! An endpoint is split into a shareable [`NetSender`] (the app
//! thread and the comm thread both send) and a single-consumer
//! [`NetReceiver`] (only the comm thread — the paper's SIGIO handler —
//! receives). Large payloads are really fragmented at the sender and
//! really reassembled at the receiver, with virtual-time stamps from the
//! per-link [`LinkClock`]s.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use lots_sim::{FaultPlan, NetModel, SchedHandle, SimInstant};

use crate::flow::{LinkClock, Transmission};
use crate::fragment::{split, Fragment, Reassembler};
use crate::message::{Envelope, NodeId, WireSize};
use crate::stats::TrafficStats;

/// What actually travels over a channel: one fragment, with the header
/// riding on fragment 0.
#[derive(Debug, Clone)]
struct Packet<M> {
    src: NodeId,
    header: Option<M>,
    frag: Fragment,
    sent_at: SimInstant,
    arrival: SimInstant,
    wire_bytes: usize,
    fragments: u32,
}

/// One channel element: a data fragment, or an out-of-band poke that
/// makes a blocked receiver return immediately (used for prompt
/// shutdown instead of waiting out the receive timeout).
#[derive(Debug, Clone)]
enum Wire<M> {
    Pkt(Packet<M>),
    Wake,
}

/// Sending half; cheap to clone and share between threads of one node.
pub struct NetSender<M> {
    id: NodeId,
    model: NetModel,
    txs: Arc<Vec<Sender<Wire<M>>>>,
    links: Arc<Vec<LinkClock>>,
    seq: Arc<AtomicU64>,
    stats: TrafficStats,
    /// Deterministic mode: the comm task of each node, woken (with the
    /// message's virtual arrival time) whenever something is sent to it.
    wakers: Option<Arc<Vec<SchedHandle>>>,
    /// Seeded per-message delay injection (fault plans).
    faults: Option<Arc<FaultPlan>>,
}

impl<M> Clone for NetSender<M> {
    fn clone(&self) -> Self {
        NetSender {
            id: self.id,
            model: self.model,
            txs: Arc::clone(&self.txs),
            links: Arc::clone(&self.links),
            seq: Arc::clone(&self.seq),
            stats: self.stats.clone(),
            wakers: self.wakers.clone(),
            faults: self.faults.clone(),
        }
    }
}

impl<M: WireSize + Send + 'static> NetSender<M> {
    /// Transmit `msg` + `payload` to `dst`, offered at sender virtual
    /// time `now`. Returns the modeled transmission timing; the caller
    /// decides which parts of it to charge to its clock.
    pub fn send(&self, dst: NodeId, msg: M, payload: Bytes, now: SimInstant) -> Transmission {
        assert_ne!(dst, self.id, "node {} sending to itself", self.id);
        let body = msg.wire_size() + payload.len();
        let mut tx = self.links[dst].transmit(&self.model, now, body);
        self.stats.record_send(tx.wire_bytes, tx.fragments);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            // Injected in-flight jitter: stretches the arrival only
            // (the sender's link occupancy is unaffected).
            tx.arrival += f.delay_for(self.id, dst, seq);
        }
        let max_frag_payload = self.model.max_datagram;
        let frags = split(seq, &payload, max_frag_payload);
        debug_assert_eq!(frags.len() as u32, self.model.fragments(payload.len()));
        let mut header = Some(msg);
        let n = frags.len();
        for frag in frags {
            let pkt = Packet {
                src: self.id,
                header: header.take(),
                frag,
                sent_at: now,
                arrival: tx.arrival,
                wire_bytes: tx.wire_bytes / n,
                fragments: tx.fragments,
            };
            // Unbounded channel: never blocks, so no deadlock between
            // comm threads that send while servicing.
            self.txs[dst]
                .send(Wire::Pkt(pkt))
                .expect("destination endpoint dropped while cluster running");
        }
        if let Some(w) = &self.wakers {
            w[dst].wake_at(tx.arrival);
        }
        tx
    }

    /// Poke `dst`'s receiver so a blocked `recv_timeout` returns
    /// [`Recv::Timeout`] immediately (and, in deterministic mode, its
    /// comm task is woken). Used for prompt shutdown: the receiver
    /// re-checks its shutdown flag instead of sleeping out the poll
    /// interval. Sending to a dropped endpoint is a no-op.
    pub fn wake(&self, dst: NodeId) {
        let _ = self.txs[dst].send(Wire::Wake);
        if let Some(w) = &self.wakers {
            w[dst].wake();
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.txs.len()
    }

    /// The network model in force.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// Traffic counters for this node.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }
}

/// Receiving half; owned by exactly one thread (the comm thread).
pub struct NetReceiver<M> {
    id: NodeId,
    rx: Receiver<Wire<M>>,
    reasm: Reassembler,
    headers: HashMap<(NodeId, u64), PendingHeader<M>>,
    stats: TrafficStats,
}

struct PendingHeader<M> {
    msg: M,
    sent_at: SimInstant,
    arrival: SimInstant,
    wire_bytes: usize,
    fragments: u32,
}

/// Outcome of a receive attempt.
pub enum Recv<M> {
    /// A complete message was reassembled.
    Message(Envelope<M>),
    /// Timed out with no complete message.
    Timeout,
    /// All senders disconnected — the cluster is shutting down.
    Disconnected,
}

impl<M: WireSize> NetReceiver<M> {
    /// Block up to `timeout` for the next *complete* message.
    ///
    /// Fragments of interleaved large messages are absorbed until one
    /// message has all its pieces (§5: no decoding of partial messages).
    ///
    /// Host-time audit: this wall-clock deadline is only reachable from
    /// the *free-running* comm loops (`SchedulerMode::FreeRunning`),
    /// which poll as a shutdown safety net. The virtual-time engine
    /// paths never call it — they use [`NetReceiver::try_recv`] plus
    /// scheduler parking (`yield_until`/`block_with`), so no engine-mode
    /// schedule ever depends on a host clock.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Recv<M> {
        // det:allow(host-time): free-running-mode poll deadline only;
        // engine modes use try_recv + virtual-time parking (see above).
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let pkt = match self.rx.recv_deadline(deadline) {
                Ok(Wire::Pkt(p)) => p,
                // Out-of-band poke: report an early timeout so the
                // caller re-checks its shutdown flag immediately.
                Ok(Wire::Wake) => return Recv::Timeout,
                Err(RecvTimeoutError::Timeout) => return Recv::Timeout,
                Err(RecvTimeoutError::Disconnected) => return Recv::Disconnected,
            };
            if let Some(env) = self.absorb(pkt) {
                return Recv::Message(env);
            }
        }
    }

    /// Non-blocking poll for a complete message. Wake pokes are
    /// swallowed (the caller is already awake).
    pub fn try_recv(&mut self) -> Option<Envelope<M>> {
        while let Ok(wire) = self.rx.try_recv() {
            let Wire::Pkt(pkt) = wire else { continue };
            if let Some(env) = self.absorb(pkt) {
                return Some(env);
            }
        }
        None
    }

    fn absorb(&mut self, pkt: Packet<M>) -> Option<Envelope<M>> {
        let key = (pkt.src, pkt.frag.msg_seq);
        if let Some(msg) = pkt.header {
            self.headers.insert(
                key,
                PendingHeader {
                    msg,
                    sent_at: pkt.sent_at,
                    arrival: pkt.arrival,
                    wire_bytes: pkt.wire_bytes * pkt.fragments as usize,
                    fragments: pkt.fragments,
                },
            );
        }
        let seq = pkt.frag.msg_seq;
        let payload = self.reasm.push(pkt.src, pkt.frag)?;
        let h = self
            .headers
            .remove(&key)
            .expect("header fragment precedes or accompanies completion");
        self.stats.record_recv(h.wire_bytes);
        Some(Envelope {
            src: pkt.src,
            msg: h.msg,
            payload,
            sent_at: h.sent_at,
            arrival: h.arrival,
            wire_bytes: h.wire_bytes,
            fragments: h.fragments,
            seq,
        })
    }

    /// Messages awaiting more fragments (the §5 memory cost).
    pub fn pending_reassemblies(&self) -> usize {
        self.reasm.pending()
    }

    pub fn id(&self) -> NodeId {
        self.id
    }
}

/// Build the two halves of one node's endpoint.
fn endpoint_pair<M>(
    id: NodeId,
    model: NetModel,
    txs: Vec<Sender<Wire<M>>>,
    rx: Receiver<Wire<M>>,
    wakers: Option<Arc<Vec<SchedHandle>>>,
    faults: Option<Arc<FaultPlan>>,
) -> (NetSender<M>, NetReceiver<M>) {
    let stats = TrafficStats::new();
    let links = Arc::new((0..txs.len()).map(|_| LinkClock::new()).collect::<Vec<_>>());
    (
        NetSender {
            id,
            model,
            txs: Arc::new(txs),
            links,
            seq: Arc::new(AtomicU64::new(0)),
            stats: stats.clone(),
            wakers,
            faults,
        },
        NetReceiver {
            id,
            rx,
            reasm: Reassembler::new(),
            headers: HashMap::new(),
            stats,
        },
    )
}

/// Build a fully connected cluster of `n` endpoints.
pub fn cluster<M: WireSize + Send + 'static>(
    n: usize,
    model: NetModel,
) -> Vec<(NetSender<M>, NetReceiver<M>)> {
    cluster_ext(n, model, None, None)
}

/// [`cluster`] with the deterministic-mode hooks: `wakers` holds the
/// scheduler task of each node's receiver (its comm task), woken with
/// the virtual arrival time on every send addressed to it; `faults`
/// injects seeded per-message delays.
pub fn cluster_ext<M: WireSize + Send + 'static>(
    n: usize,
    model: NetModel,
    wakers: Option<Vec<SchedHandle>>,
    faults: Option<Arc<FaultPlan>>,
) -> Vec<(NetSender<M>, NetReceiver<M>)> {
    assert!(n >= 1, "cluster needs at least one node");
    if let Some(w) = &wakers {
        assert_eq!(w.len(), n, "one waker per node");
    }
    let wakers = wakers.map(Arc::new);
    let mut txs: Vec<Vec<Sender<Wire<M>>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut rxs: Vec<Receiver<Wire<M>>> = Vec::with_capacity(n);
    for _dst in 0..n {
        let (tx, rx) = channel::unbounded::<Wire<M>>();
        rxs.push(rx);
        for sender_txs in txs.iter_mut() {
            sender_txs.push(tx.clone());
        }
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(id, (tx, rx))| endpoint_pair(id, model, tx, rx, wakers.clone(), faults.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lots_sim::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u32);

    impl WireSize for TestMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    fn model() -> NetModel {
        NetModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 10_000_000,
            per_fragment: SimDuration::from_micros(10),
            max_datagram: 4096,
            window_frags: 8,
        }
    }

    #[test]
    fn small_message_roundtrip() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = {
            let (s, r) = eps.remove(0);
            (s, r)
        };
        let t = tx1.send(0, TestMsg(42), Bytes::from_static(b"hello"), SimInstant(0));
        assert_eq!(t.fragments, 1);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(env) => {
                assert_eq!(env.src, 1);
                assert_eq!(env.msg, TestMsg(42));
                assert_eq!(&env.payload[..], b"hello");
                assert_eq!(env.arrival, t.arrival);
            }
            _ => panic!("expected message"),
        }
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let payload: Bytes = (0..20_000u32)
            .map(|i| (i % 256) as u8)
            .collect::<Vec<_>>()
            .into();
        let t = tx1.send(0, TestMsg(7), payload.clone(), SimInstant(0));
        assert!(t.fragments >= 5, "fragments={}", t.fragments);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(env) => {
                assert_eq!(env.payload, payload);
                assert_eq!(env.fragments, t.fragments);
            }
            _ => panic!("expected message"),
        }
        assert_eq!(rx0.pending_reassemblies(), 0);
    }

    #[test]
    fn messages_from_same_sender_keep_order_and_serialize() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let t1 = tx1.send(0, TestMsg(1), Bytes::from(vec![0u8; 8000]), SimInstant(0));
        let t2 = tx1.send(0, TestMsg(2), Bytes::from(vec![1u8; 100]), SimInstant(0));
        // Link serialization: second departs after first finishes.
        assert!(t2.arrival > t1.arrival);
        let a = match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(e) => e,
            _ => panic!(),
        };
        let b = match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(e) => e,
            _ => panic!(),
        };
        assert_eq!(a.msg, TestMsg(1));
        assert_eq!(b.msg, TestMsg(2));
    }

    #[test]
    fn timeout_when_no_traffic() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (_, mut rx0) = eps.remove(0);
        match rx0.recv_timeout(Duration::from_millis(10)) {
            Recv::Timeout => {}
            _ => panic!("expected timeout"),
        }
    }

    #[test]
    fn wake_poke_cuts_receive_timeout_short() {
        // Shutdown latency: a blocked receiver returns as soon as it is
        // poked, not after its (here huge) poll timeout.
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx1, _) = eps.remove(1);
        let (_, mut rx0) = eps.remove(0);
        let t = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            match rx0.recv_timeout(Duration::from_secs(30)) {
                Recv::Timeout => started.elapsed(),
                _ => panic!("expected early timeout from the wake poke"),
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        tx1.wake(0);
        let waited = t.join().unwrap();
        assert!(waited < Duration::from_secs(5), "poke ignored: {waited:?}");
    }

    #[test]
    fn fault_delays_stretch_arrival_only() {
        use lots_sim::{FaultPlan, SimDuration};
        let max = SimDuration::from_millis(5);
        let plain = cluster::<TestMsg>(2, model());
        let faulty =
            cluster_ext::<TestMsg>(2, model(), None, Some(Arc::new(FaultPlan::delays(7, max))));
        let send = |eps: &[(NetSender<TestMsg>, NetReceiver<TestMsg>)]| {
            eps[1]
                .0
                .send(0, TestMsg(1), Bytes::from_static(b"x"), SimInstant(0))
        };
        let a = send(&plain);
        let b = send(&faulty);
        assert_eq!(a.sender_free, b.sender_free, "link occupancy unchanged");
        assert!(b.arrival >= a.arrival);
        assert!(b.arrival.saturating_sub(a.arrival) <= max);
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (_, mut rx0) = eps.remove(0);
        drop(eps); // drops node 1's sender (and node 0's own sender clone)
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Disconnected => {}
            _ => panic!("expected disconnect"),
        }
    }

    #[test]
    fn stats_count_both_directions() {
        let mut eps = cluster::<TestMsg>(3, model());
        let (tx2, _) = eps.remove(2);
        let (_, mut rx0) = eps.remove(0);
        tx2.send(0, TestMsg(9), Bytes::from(vec![0u8; 1000]), SimInstant(0));
        assert_eq!(tx2.stats().msgs_sent(), 1);
        assert!(tx2.stats().bytes_sent() >= 1000);
        match rx0.recv_timeout(Duration::from_secs(1)) {
            Recv::Message(_) => {}
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut eps = cluster::<TestMsg>(2, model());
        let (tx0, _) = eps.remove(0);
        tx0.send(0, TestMsg(0), Bytes::new(), SimInstant(0));
    }

    #[test]
    fn concurrent_senders_to_one_receiver() {
        let eps = cluster::<TestMsg>(4, model());
        let mut it = eps.into_iter();
        let (_, mut rx0) = it.next().unwrap();
        let senders: Vec<_> = it.map(|(s, _)| s).collect();
        let mut handles = Vec::new();
        for (i, s) in senders.into_iter().enumerate() {
            handles.push(std::thread::spawn(move || {
                for k in 0..25u32 {
                    s.send(
                        0,
                        TestMsg(k),
                        Bytes::from(vec![i as u8; 6000]),
                        SimInstant(0),
                    );
                }
            }));
        }
        let mut got = 0;
        while got < 75 {
            match rx0.recv_timeout(Duration::from_secs(5)) {
                Recv::Message(env) => {
                    assert_eq!(env.payload.len(), 6000);
                    got += 1;
                }
                _ => panic!("lost messages: only {got}"),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
