//! Cluster-wide log of messages dropped without retransmission.
//!
//! When a fault plan disables the reliable layer (or exhausts its retry
//! budget inside an unhealed partition), a dropped request leaves its
//! requester blocked forever in virtual time. The deadlock detector
//! sees only a generic `Reply` block; this log lets the runtime name
//! the missing `(src, dst, seq)` triples in the deadlock snapshot so
//! the user debugs a concrete lost message, not an ambiguity.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::message::NodeId;

/// Shared, cloneable record of every message the transport dropped.
///
/// A `BTreeSet` keyed by `(src, dst, seq)`: the membership is a pure
/// function of the fault plan (drops are decided by seeded hashes at
/// send time), and the sorted order makes the rendered snapshot
/// deterministic too.
#[derive(Debug, Clone, Default)]
pub struct DropLog {
    inner: Arc<Mutex<BTreeSet<(NodeId, NodeId, u64)>>>,
}

impl DropLog {
    pub fn new() -> DropLog {
        DropLog::default()
    }

    /// Record that the message `src → dst` with sender sequence `seq`
    /// was dropped with no retransmission left.
    pub fn record(&self, src: NodeId, dst: NodeId, seq: u64) {
        self.inner.lock().insert((src, dst, seq));
    }

    /// Total messages dropped so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The dropped `(src, dst, seq)` triples, in sorted order.
    pub fn entries(&self) -> Vec<(NodeId, NodeId, u64)> {
        self.inner.lock().iter().copied().collect()
    }

    /// Deadlock-snapshot rendering: one line per dropped message, empty
    /// when nothing was dropped.
    pub fn render(&self) -> String {
        let log = self.inner.lock();
        if log.is_empty() {
            return String::new();
        }
        let mut out = String::from("  messages dropped without retransmission:");
        for &(src, dst, seq) in log.iter() {
            let _ = write!(out, "\n    node {src} -> node {dst} seq {seq}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_renders_nothing() {
        let log = DropLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.render(), "");
    }

    #[test]
    fn entries_are_sorted_and_deduplicated() {
        let log = DropLog::new();
        log.record(2, 0, 9);
        log.record(0, 1, 5);
        log.record(2, 0, 9);
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries(), vec![(0, 1, 5), (2, 0, 9)]);
        let r = log.render();
        assert!(r.contains("node 0 -> node 1 seq 5"), "{r}");
        assert!(r.contains("node 2 -> node 0 seq 9"), "{r}");
    }

    #[test]
    fn clones_share_the_log() {
        let log = DropLog::new();
        let other = log.clone();
        log.record(1, 2, 3);
        assert_eq!(other.len(), 1);
    }
}
