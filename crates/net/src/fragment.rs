//! UDP fragmentation and reassembly.
//!
//! The paper's transport cannot send datagrams above 64 KB, so large
//! messages (whole objects, big diff batches) are split and the receiver
//! must hold *all* fragments before it can rebuild and decode the
//! message — identified in §5 as a performance bottleneck and a memory
//! cost. We reproduce that mechanism literally: payload bytes are
//! chunked into [`Fragment`]s and a [`Reassembler`] rebuilds them,
//! refusing to deliver anything until the last fragment lands.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::message::NodeId;

/// One UDP-sized piece of a logical message.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Sender-scoped id of the logical message being reassembled.
    pub msg_seq: u64,
    /// Index of this fragment within the message.
    pub index: u32,
    /// Total fragment count for the message.
    pub total: u32,
    /// This fragment's slice of the payload.
    pub data: Bytes,
}

/// Split `payload` into fragments of at most `max_payload` bytes each.
///
/// A zero-length payload still produces one (empty) fragment, mirroring
/// a header-only datagram.
pub fn split(msg_seq: u64, payload: &Bytes, max_payload: usize) -> Vec<Fragment> {
    assert!(max_payload > 0, "fragment capacity must be positive");
    if payload.is_empty() {
        return vec![Fragment {
            msg_seq,
            index: 0,
            total: 1,
            data: Bytes::new(),
        }];
    }
    let total = payload.len().div_ceil(max_payload) as u32;
    let mut out = Vec::with_capacity(total as usize);
    for (i, start) in (0..payload.len()).step_by(max_payload).enumerate() {
        let end = (start + max_payload).min(payload.len());
        out.push(Fragment {
            msg_seq,
            index: i as u32,
            total,
            data: payload.slice(start..end),
        });
    }
    out
}

/// Reassembly state for messages arriving from many peers.
///
/// Keyed by `(src, msg_seq)`. Fragments may arrive out of order and,
/// under duplication faults (or a retransmitting transport), more than
/// once; a repeated `(key, index)` is dropped by index without
/// double-counting bytes or touching the already-buffered chunk.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<(NodeId, u64), Partial>,
    dup_frags: u64,
}

#[derive(Debug)]
struct Partial {
    total: u32,
    received: u32,
    chunks: Vec<Option<Bytes>>,
}

impl Reassembler {
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feed one fragment; returns the full payload when the message
    /// completes, `None` while fragments are still outstanding.
    pub fn push(&mut self, src: NodeId, frag: Fragment) -> Option<Bytes> {
        if frag.total == 1 {
            debug_assert_eq!(frag.index, 0);
            return Some(frag.data);
        }
        let key = (src, frag.msg_seq);
        let entry = self.partial.entry(key).or_insert_with(|| Partial {
            total: frag.total,
            received: 0,
            chunks: vec![None; frag.total as usize],
        });
        assert_eq!(
            entry.total, frag.total,
            "fragment total mismatch for message {key:?}"
        );
        let slot = &mut entry.chunks[frag.index as usize];
        if slot.is_some() {
            // Duplicate in flight: ignore it — the buffered chunk and
            // the received count both stay as they are.
            self.dup_frags += 1;
            return None;
        }
        *slot = Some(frag.data);
        entry.received += 1;
        if entry.received < entry.total {
            return None;
        }
        let entry = self.partial.remove(&key).expect("entry just inserted");
        let mut buf = BytesMut::with_capacity(
            entry
                .chunks
                .iter()
                .map(|c| c.as_ref().map_or(0, |b| b.len()))
                .sum(),
        );
        for chunk in entry.chunks {
            buf.extend_from_slice(&chunk.expect("all fragments received"));
        }
        Some(buf.freeze())
    }

    /// Number of messages currently awaiting fragments — the memory
    /// cost §5 complains about.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Duplicate fragments dropped by index during reassembly.
    pub fn dup_frags(&self) -> u64 {
        self.dup_frags
    }

    /// Does the reassembler already hold this fragment's slot? (Used by
    /// the receive path to count duplicates before feeding them in.)
    pub fn already_has(&self, src: NodeId, frag: &Fragment) -> bool {
        self.partial
            .get(&(src, frag.msg_seq))
            .is_some_and(|p| p.chunks[frag.index as usize].is_some())
    }

    /// Bytes buffered for incomplete messages.
    pub fn pending_bytes(&self) -> usize {
        self.partial
            .values()
            .flat_map(|p| p.chunks.iter())
            .map(|c| c.as_ref().map_or(0, |b| b.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        (0..n).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into()
    }

    #[test]
    fn small_message_is_single_fragment() {
        let p = payload(100);
        let frags = split(1, &p, 64 * 1024);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].total, 1);
        assert_eq!(frags[0].data, p);
    }

    #[test]
    fn empty_payload_still_one_fragment() {
        let frags = split(7, &Bytes::new(), 1024);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].data.is_empty());
    }

    #[test]
    fn split_covers_payload_exactly() {
        let p = payload(10_000);
        let frags = split(2, &p, 4096);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].data.len(), 4096);
        assert_eq!(frags[1].data.len(), 4096);
        assert_eq!(frags[2].data.len(), 10_000 - 8192);
        let total: usize = frags.iter().map(|f| f.data.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn reassembly_in_order() {
        let p = payload(9_000);
        let mut r = Reassembler::new();
        let frags = split(3, &p, 4096);
        let n = frags.len();
        for (i, f) in frags.into_iter().enumerate() {
            let out = r.push(0, f);
            if i + 1 < n {
                assert!(out.is_none());
                assert_eq!(r.pending(), 1);
            } else {
                assert_eq!(out.unwrap(), p);
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reassembly_out_of_order() {
        let p = payload(12_345);
        let mut r = Reassembler::new();
        let mut frags = split(9, &p, 1000);
        frags.reverse();
        let n = frags.len();
        let mut done = None;
        for (i, f) in frags.into_iter().enumerate() {
            let out = r.push(5, f);
            if i + 1 < n {
                assert!(out.is_none());
            } else {
                done = out;
            }
        }
        assert_eq!(done.unwrap(), p);
    }

    #[test]
    fn interleaved_messages_from_different_sources() {
        let pa = payload(5_000);
        let pb = payload(6_000);
        let fa = split(1, &pa, 2048);
        let fb = split(1, &pb, 2048);
        let mut r = Reassembler::new();
        // Interleave: a0 b0 a1 b1 a2 b2.
        let mut out_a = None;
        let mut out_b = None;
        for (a, b) in fa.into_iter().zip(fb) {
            out_a = r.push(10, a);
            out_b = r.push(11, b);
        }
        assert_eq!(out_a.unwrap(), pa);
        assert_eq!(out_b.unwrap(), pb);
        assert_eq!(r.pending(), 0);
        assert_eq!(r.pending_bytes(), 0);
    }

    #[test]
    fn pending_bytes_tracks_buffered_data() {
        let p = payload(8192);
        let frags = split(4, &p, 4096);
        let mut r = Reassembler::new();
        r.push(0, frags[0].clone());
        assert_eq!(r.pending_bytes(), 4096);
    }

    #[test]
    fn duplicate_fragment_is_ignored_without_double_counting() {
        let p = payload(8192);
        let frags = split(4, &p, 4096);
        let mut r = Reassembler::new();
        assert!(r.push(0, frags[0].clone()).is_none());
        assert!(!r.already_has(0, &frags[1]));
        assert!(r.already_has(0, &frags[0]));
        // The duplicate must not complete the message or grow buffers.
        assert!(r.push(0, frags[0].clone()).is_none());
        assert_eq!(r.dup_frags(), 1);
        assert_eq!(r.pending_bytes(), 4096);
        // The genuinely missing fragment still completes it correctly.
        assert_eq!(r.push(0, frags[1].clone()).unwrap(), p);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicated_and_reordered_fragments_reassemble_intact() {
        // Satellite regression: a dup+reorder plan at the fragment
        // level — fragments delivered in reverse order, every
        // still-incomplete fragment delivered twice — must rebuild the
        // exact payload. (Duplicates arriving *after* completion are
        // filtered upstream by the endpoint's delivered-message set.)
        let p = payload(10_000);
        let mut frags = split(11, &p, 1000);
        frags.reverse();
        let last = frags.pop().unwrap();
        let mut doubled: Vec<_> = frags.iter().flat_map(|f| [f.clone(), f.clone()]).collect();
        doubled.push(last);
        let mut r = Reassembler::new();
        let mut out = None;
        for f in doubled {
            if let Some(done) = r.push(3, f) {
                assert!(out.is_none(), "message completed twice");
                out = Some(done);
            }
        }
        assert_eq!(out.unwrap(), p);
        assert_eq!(r.dup_frags(), 9, "one dup per non-final fragment");
        assert_eq!(r.pending(), 0);
        assert_eq!(r.pending_bytes(), 0);
    }
}
