//! Link occupancy and sliding-window flow control timing.
//!
//! §3.6: LOTS uses dedicated point-to-point UDP channels with "a simple
//! flow control algorithm, slightly more efficient than that of the TCP
//! protocol". Two timing effects matter for the evaluation:
//!
//! 1. **Serialization** — a link carries one datagram at a time, so
//!    back-to-back sends on the same link queue behind each other (this
//!    is what makes the all-to-all write-update traffic at barriers
//!    expensive, the very motivation for the mixed protocol of §3.4).
//! 2. **Window stalls** — after a full window of unacknowledged
//!    fragments the sender waits one round trip for an ack.
//!
//! [`LinkClock`] tracks when each directed link next becomes free and
//! computes the virtual departure/arrival times of a message.

use lots_sim::{NetModel, SimDuration, SimInstant};
use parking_lot::Mutex;

/// Timing outcome of transmitting one (possibly fragmented) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// When the first fragment left the sender (after queueing).
    pub depart: SimInstant,
    /// When the sender is free again (link released).
    pub sender_free: SimInstant,
    /// When the last fragment arrived at the receiver — the earliest
    /// virtual time the message can be decoded.
    pub arrival: SimInstant,
    /// Fragments used.
    pub fragments: u32,
    /// Total bytes on the wire, including per-fragment headers.
    pub wire_bytes: usize,
}

/// Occupancy clock for one directed link.
#[derive(Debug, Default)]
pub struct LinkClock {
    free_at: Mutex<SimInstant>,
}

impl LinkClock {
    pub fn new() -> LinkClock {
        LinkClock::default()
    }

    /// Reserve the link for a message of `body_bytes` (header+payload)
    /// offered at sender-virtual-time `now`; returns the transmission
    /// timing and advances the link's free time.
    pub fn transmit(&self, model: &NetModel, now: SimInstant, body_bytes: usize) -> Transmission {
        let fragments = model.fragments(body_bytes);
        let wire_bytes = body_bytes + fragments as usize * crate::message::FRAGMENT_HEADER_BYTES;
        let stalls = fragments.saturating_sub(1) / model.window_frags;
        // Time the sender's NIC/stack is busy pushing the fragments out,
        // including flow-control stalls awaiting window acks.
        let busy = model.wire_time(wire_bytes)
            + SimDuration(model.per_fragment.0 * fragments as u64)
            + SimDuration(2 * model.latency.0 * stalls as u64);
        let mut free_at = self.free_at.lock();
        let depart = now.max(*free_at);
        let sender_free = depart + busy;
        *free_at = sender_free;
        Transmission {
            depart,
            sender_free,
            arrival: sender_free + model.latency,
            fragments,
            wire_bytes,
        }
    }

    /// Next time the link is idle (for tests/diagnostics).
    pub fn free_at(&self) -> SimInstant {
        *self.free_at.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NetModel {
        NetModel {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 10_000_000,
            per_fragment: SimDuration::from_micros(10),
            max_datagram: 1024,
            window_frags: 4,
        }
    }

    #[test]
    fn single_fragment_timing() {
        let l = LinkClock::new();
        let m = model();
        let t = l.transmit(&m, SimInstant(0), 100);
        assert_eq!(t.fragments, 1);
        assert_eq!(t.wire_bytes, 100 + 28);
        assert_eq!(t.depart, SimInstant(0));
        // busy = wire(128B @10MB/s = 12.8us) + 10us per-frag
        assert_eq!(t.sender_free, SimInstant(12_800 + 10_000));
        assert_eq!(t.arrival.0, t.sender_free.0 + 100_000);
    }

    #[test]
    fn back_to_back_messages_serialize() {
        let l = LinkClock::new();
        let m = model();
        let t1 = l.transmit(&m, SimInstant(0), 1000);
        let t2 = l.transmit(&m, SimInstant(0), 1000);
        assert_eq!(t2.depart, t1.sender_free);
        assert!(t2.arrival > t1.arrival);
    }

    #[test]
    fn idle_link_starts_at_offer_time() {
        let l = LinkClock::new();
        let m = model();
        let t = l.transmit(&m, SimInstant(5_000_000), 10);
        assert_eq!(t.depart, SimInstant(5_000_000));
    }

    #[test]
    fn window_stall_kicks_in_after_full_window() {
        let l1 = LinkClock::new();
        let l2 = LinkClock::new();
        let m = model();
        // 5 fragments (5KB/1KB): one stall; 4 fragments: none.
        let with_stall = l1.transmit(&m, SimInstant(0), 5 * 1024 - 28 * 5);
        let without = l2.transmit(&m, SimInstant(0), 4 * 1024 - 28 * 4);
        assert_eq!(with_stall.fragments, 5);
        assert_eq!(without.fragments, 4);
        let delta = with_stall.sender_free.saturating_sub(without.sender_free);
        assert!(delta.0 >= 2 * m.latency.0, "delta={delta}");
    }

    #[test]
    fn concurrent_transmits_never_overlap() {
        let l = std::sync::Arc::new(LinkClock::new());
        let m = model();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|_| l.transmit(&m, SimInstant(0), 500))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Transmission> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_by_key(|t| t.depart);
        for w in all.windows(2) {
            assert!(w[1].depart >= w[0].sender_free, "overlapping transmissions");
        }
    }
}
