//! Per-node traffic accounting.
//!
//! The paper's §4.1 analysis attributes LOTS-vs-JIAJIA gaps largely to
//! data traffic (false sharing, home placement, ping-pong patterns);
//! these counters let the Figure 8 harness report the traffic behind
//! each timing so the causal story can be checked, not just the curve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free traffic counters for one endpoint.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    msgs_sent: AtomicU64,
    msgs_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    fragments_sent: AtomicU64,
    msgs_dropped: AtomicU64,
    msgs_retransmitted: AtomicU64,
    dups_sent: AtomicU64,
    dups_filtered: AtomicU64,
}

impl TrafficStats {
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Record an outgoing message. Called by the endpoint for real
    /// transfers and by synchronization services for analytically
    /// modeled control messages (lock/barrier coordination).
    pub fn record_send(&self, wire_bytes: usize, fragments: u32) {
        self.inner.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_sent
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
        self.inner
            .fragments_sent
            .fetch_add(fragments as u64, Ordering::Relaxed);
    }

    /// Record an incoming message (see [`TrafficStats::record_send`]).
    pub fn record_recv(&self, wire_bytes: usize) {
        self.inner.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_received
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);
    }

    pub fn msgs_sent(&self) -> u64 {
        self.inner.msgs_sent.load(Ordering::Relaxed)
    }

    pub fn msgs_received(&self) -> u64 {
        self.inner.msgs_received.load(Ordering::Relaxed)
    }

    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed)
    }

    pub fn bytes_received(&self) -> u64 {
        self.inner.bytes_received.load(Ordering::Relaxed)
    }

    pub fn fragments_sent(&self) -> u64 {
        self.inner.fragments_sent.load(Ordering::Relaxed)
    }

    /// Record a message every transmission attempt of which was lost
    /// (retransmission disabled or its retry budget exhausted).
    pub fn record_drop(&self) {
        self.inner.msgs_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the retransmissions the reliable layer needed to get one
    /// message through.
    pub fn record_retransmits(&self, n: u32) {
        self.inner
            .msgs_retransmitted
            .fetch_add(u64::from(n), Ordering::Relaxed);
    }

    /// Record a duplicate fragment injected in flight (sender side).
    pub fn record_dup_sent(&self) {
        self.inner.dups_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duplicate filtered on the receive path (either a whole
    /// duplicated message or a duplicate fragment).
    pub fn record_dup_filtered(&self) {
        self.inner.dups_filtered.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages dropped after exhausting every transmission attempt.
    pub fn msgs_dropped(&self) -> u64 {
        self.inner.msgs_dropped.load(Ordering::Relaxed)
    }

    /// Retransmission attempts the reliable layer paid for.
    pub fn msgs_retransmitted(&self) -> u64 {
        self.inner.msgs_retransmitted.load(Ordering::Relaxed)
    }

    /// Duplicate fragments injected in flight by the fault plan.
    pub fn dups_sent(&self) -> u64 {
        self.inner.dups_sent.load(Ordering::Relaxed)
    }

    /// Duplicates discarded by the receive path's dedupe filters.
    pub fn dups_filtered(&self) -> u64 {
        self.inner.dups_filtered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = TrafficStats::new();
        s.record_send(100, 1);
        s.record_send(200_000, 4);
        s.record_recv(64);
        assert_eq!(s.msgs_sent(), 2);
        assert_eq!(s.bytes_sent(), 200_100);
        assert_eq!(s.fragments_sent(), 5);
        assert_eq!(s.msgs_received(), 1);
        assert_eq!(s.bytes_received(), 64);
    }

    #[test]
    fn clones_share() {
        let s = TrafficStats::new();
        let t = s.clone();
        s.record_send(10, 1);
        assert_eq!(t.bytes_sent(), 10);
    }
}
