//! Word-granular run-length encoding for the modeled store.
//!
//! Table 1 writes more than 4 GB of object data through the swap path;
//! a laptop-scale reproduction cannot hold that for real. The workloads'
//! rows are highly repetitive (the paper's Test-2 program "just adds
//! some numbers held by each process"), so the [`ModeledStore`]
//! compresses images with a run-length code over 32-bit words: constant
//! rows shrink to a handful of bytes while arbitrary data round-trips
//! unchanged (at worst ~2× expansion, only ever paid by small test
//! inputs).
//!
//! [`ModeledStore`]: crate::modeled::ModeledStore

/// One run: `count` repetitions of `word`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub count: u32,
    pub word: u32,
}

/// Deterministic decode failure: the byte stream is not a valid
/// [`RleImage::to_bytes`] stream (truncated mid-record, impossible
/// tail length, or arithmetic overflow in the declared geometry).
///
/// Journals and swap images both feed stored bytes back through this
/// parser, and a torn append makes truncated streams a *real* input —
/// parsing must reject them as data, never panic or slice out of
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptImage {
    /// Byte offset at which parsing failed.
    pub at: usize,
}

impl std::fmt::Display for CorruptImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt RLE image (parse failed at byte {})", self.at)
    }
}

impl std::error::Error for CorruptImage {}

/// An RLE-compressed byte image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RleImage {
    runs: Vec<Run>,
    /// 0–3 bytes that did not fill a whole word.
    tail: Vec<u8>,
    /// Original length in bytes.
    len: usize,
}

impl RleImage {
    /// Compress `data`.
    pub fn encode(data: &[u8]) -> RleImage {
        let mut runs: Vec<Run> = Vec::new();
        let words = data.len() / 4;
        for i in 0..words {
            let w = u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"));
            match runs.last_mut() {
                Some(r) if r.word == w && r.count < u32::MAX => r.count += 1,
                _ => runs.push(Run { count: 1, word: w }),
            }
        }
        RleImage {
            runs,
            tail: data[words * 4..].to_vec(),
            len: data.len(),
        }
    }

    /// Decompress back to the original bytes.
    pub fn decode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for r in &self.runs {
            let bytes = r.word.to_le_bytes();
            for _ in 0..r.count {
                out.extend_from_slice(&bytes);
            }
        }
        out.extend_from_slice(&self.tail);
        debug_assert_eq!(out.len(), self.len);
        out
    }

    /// Original (logical) size in bytes.
    pub fn logical_len(&self) -> usize {
        self.len
    }

    /// Actual memory held by the compressed form.
    pub fn stored_len(&self) -> usize {
        self.runs.len() * std::mem::size_of::<Run>() + self.tail.len()
    }

    /// Serialize to a self-describing byte stream (the on-disk form of
    /// a compressed swap image): `[runs u32][(count u32, word u32)…]`
    /// `[tail_len u8][tail…]`, all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.runs.len() * 8 + 1 + self.tail.len());
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for r in &self.runs {
            out.extend_from_slice(&r.count.to_le_bytes());
            out.extend_from_slice(&r.word.to_le_bytes());
        }
        debug_assert!(self.tail.len() < 4);
        out.push(self.tail.len() as u8);
        out.extend_from_slice(&self.tail);
        out
    }

    /// Parse a stream produced by [`RleImage::to_bytes`]. Returns the
    /// image and the number of bytes consumed (streams concatenate), or
    /// a [`CorruptImage`] error if the stream is truncated or its
    /// declared geometry is inconsistent — never panics on bad bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<(RleImage, usize), CorruptImage> {
        let corrupt = |at: usize| CorruptImage { at };
        let header: [u8; 4] = bytes
            .get(0..4)
            .and_then(|b| b.try_into().ok())
            .ok_or(corrupt(bytes.len()))?;
        let n_runs = u32::from_le_bytes(header) as usize;
        let mut runs = Vec::with_capacity(n_runs.min(bytes.len() / 8 + 1));
        let mut at = 4;
        let mut words = 0usize;
        for _ in 0..n_runs {
            let rec = bytes.get(at..at + 8).ok_or(corrupt(bytes.len()))?;
            let count = u32::from_le_bytes(rec[0..4].try_into().expect("4-byte chunk"));
            let word = u32::from_le_bytes(rec[4..8].try_into().expect("4-byte chunk"));
            runs.push(Run { count, word });
            words = words.checked_add(count as usize).ok_or(corrupt(at))?;
            at += 8;
        }
        let tail_len = *bytes.get(at).ok_or(corrupt(bytes.len()))? as usize;
        if tail_len >= 4 {
            return Err(corrupt(at));
        }
        at += 1;
        let tail = bytes.get(at..at + tail_len).ok_or(corrupt(bytes.len()))?;
        at += tail_len;
        let len = words
            .checked_mul(4)
            .and_then(|b| b.checked_add(tail_len))
            .ok_or(corrupt(at))?;
        Ok((
            RleImage {
                runs,
                tail: tail.to_vec(),
                len,
            },
            at,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_row_compresses_to_one_run() {
        let data: Vec<u8> = std::iter::repeat_n(7u32.to_le_bytes(), 1_000_000)
            .flatten()
            .collect();
        let img = RleImage::encode(&data);
        assert_eq!(img.runs.len(), 1);
        assert_eq!(img.logical_len(), 4_000_000);
        assert!(img.stored_len() < 16);
        assert_eq!(img.decode(), data);
    }

    #[test]
    fn empty_roundtrip() {
        let img = RleImage::encode(&[]);
        assert_eq!(img.decode(), Vec::<u8>::new());
        assert_eq!(img.stored_len(), 0);
    }

    #[test]
    fn unaligned_tail_roundtrip() {
        let data = vec![1u8, 2, 3, 4, 5, 6, 7];
        let img = RleImage::encode(&data);
        assert_eq!(img.decode(), data);
        assert_eq!(img.tail, vec![5, 6, 7]);
    }

    #[test]
    fn alternating_words_make_distinct_runs() {
        let mut data = Vec::new();
        for i in 0..100u32 {
            data.extend_from_slice(&(i % 2).to_le_bytes());
        }
        let img = RleImage::encode(&data);
        assert_eq!(img.runs.len(), 100);
        assert_eq!(img.decode(), data);
    }

    #[test]
    fn byte_stream_roundtrip_and_concatenation() {
        let a = RleImage::encode(&[7u8; 4096]);
        let b = RleImage::encode(&[1u8, 2, 3, 4, 5, 6, 7]);
        let mut stream = a.to_bytes();
        stream.extend_from_slice(&b.to_bytes());
        let (a2, used_a) = RleImage::from_bytes(&stream).expect("valid stream");
        let (b2, used_b) = RleImage::from_bytes(&stream[used_a..]).expect("valid stream");
        assert_eq!(a2, a);
        assert_eq!(b2, b);
        assert_eq!(used_a + used_b, stream.len());
        assert_eq!(a2.decode(), vec![7u8; 4096]);
        assert_eq!(b2.decode(), vec![1u8, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn garbage_headers_error_instead_of_panicking() {
        // Empty, short header, run record missing, tail byte missing,
        // impossible tail length, astronomically-overflowing geometry.
        assert!(RleImage::from_bytes(&[]).is_err());
        assert!(RleImage::from_bytes(&[1, 0]).is_err());
        assert!(RleImage::from_bytes(&[1, 0, 0, 0, 9, 9]).is_err());
        assert!(
            RleImage::from_bytes(&[0, 0, 0, 0]).is_err(),
            "missing tail-length byte"
        );
        let mut bad_tail = RleImage::encode(&[1, 2, 3, 4]).to_bytes();
        let tail_at = bad_tail.len() - 1;
        bad_tail[tail_at] = 7; // tail_len must be < 4
        assert!(RleImage::from_bytes(&bad_tail).is_err());
        // Valid structure, declared payload overflows usize on no real
        // machine — but a u32::MAX run count times many runs must not
        // wrap the word accounting silently either way.
        let mut huge = Vec::new();
        huge.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            huge.extend_from_slice(&u32::MAX.to_le_bytes());
            huge.extend_from_slice(&0u32.to_le_bytes());
        }
        huge.push(0);
        let parsed = RleImage::from_bytes(&huge);
        if let Ok((img, _)) = parsed {
            assert_eq!(img.logical_len(), 2 * (u32::MAX as usize) * 4);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let img = RleImage::encode(&data);
            prop_assert_eq!(img.decode(), data.clone());
            prop_assert_eq!(img.logical_len(), data.len());
            let (back, used) = RleImage::from_bytes(&img.to_bytes()).expect("valid stream");
            prop_assert_eq!(used, img.to_bytes().len());
            prop_assert_eq!(back.decode(), data);
        }

        #[test]
        fn truncation_at_every_boundary_is_detected(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let stream = RleImage::encode(&data).to_bytes();
            for cut in 0..stream.len() {
                prop_assert!(
                    RleImage::from_bytes(&stream[..cut]).is_err(),
                    "prefix of {cut}/{} bytes must not parse", stream.len()
                );
            }
        }

        #[test]
        fn roundtrip_repetitive(word in any::<u32>(), reps in 0usize..512, tail in proptest::collection::vec(any::<u8>(), 0..4)) {
            let mut data: Vec<u8> = std::iter::repeat_n(word.to_le_bytes(), reps).flatten().collect();
            data.extend_from_slice(&tail);
            let img = RleImage::encode(&data);
            prop_assert_eq!(img.decode(), data);
            prop_assert!(img.runs.len() <= 2);
        }
    }
}
