//! In-memory backing store: real bytes, modeled timing.
//!
//! The default store for unit/integration tests and small examples —
//! swap images are held verbatim so any corruption in the mapper or the
//! coherence protocol shows up as a hard data mismatch.

use std::collections::HashMap;

use lots_sim::{DiskModel, SimDuration};
use parking_lot::Mutex;

use crate::store::{BackingStore, DiskError, SwapKey};

/// A heap-backed swap store with [`DiskModel`] timing and an optional
/// capacity limit.
pub struct MemStore {
    model: DiskModel,
    capacity: Option<u64>,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    images: HashMap<SwapKey, Vec<u8>>,
    used: u64,
}

impl MemStore {
    pub fn new(model: DiskModel) -> MemStore {
        MemStore {
            model,
            capacity: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn with_capacity(model: DiskModel, capacity_bytes: u64) -> MemStore {
        MemStore {
            model,
            capacity: Some(capacity_bytes),
            inner: Mutex::new(Inner::default()),
        }
    }
}

impl BackingStore for MemStore {
    fn model(&self) -> DiskModel {
        self.model
    }

    fn put(&self, key: SwapKey, data: &[u8]) -> Result<SimDuration, DiskError> {
        let mut inner = self.inner.lock();
        let replaced = inner.images.get(&key).map_or(0, |v| v.len() as u64);
        let new_used = inner.used - replaced + data.len() as u64;
        if let Some(cap) = self.capacity {
            if new_used > cap {
                return Err(DiskError::OutOfSpace {
                    need: data.len() as u64,
                    free: cap.saturating_sub(inner.used - replaced),
                });
            }
        }
        inner.images.insert(key, data.to_vec());
        inner.used = new_used;
        Ok(self.model.write_time(data.len() as u64))
    }

    fn get(&self, key: SwapKey) -> Result<(Vec<u8>, SimDuration), DiskError> {
        let inner = self.inner.lock();
        let data = inner.images.get(&key).ok_or(DiskError::NotFound(key))?;
        Ok((data.clone(), self.model.read_time(data.len() as u64)))
    }

    fn remove(&self, key: SwapKey) -> Result<(), DiskError> {
        let mut inner = self.inner.lock();
        let data = inner.images.remove(&key).ok_or(DiskError::NotFound(key))?;
        inner.used -= data.len() as u64;
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    fn object_count(&self) -> usize {
        self.inner.lock().images.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel {
            per_op: SimDuration::from_micros(100),
            write_bps: 10_000_000,
            read_bps: 20_000_000,
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let s = MemStore::new(model());
        let t = s.put(1, b"hello world").unwrap();
        assert!(t > SimDuration::ZERO);
        let (data, rt) = s.get(1).unwrap();
        assert_eq!(data, b"hello world");
        assert!(rt > SimDuration::ZERO);
        assert_eq!(s.used_bytes(), 11);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn replace_updates_usage() {
        let s = MemStore::new(model());
        s.put(1, &[0u8; 100]).unwrap();
        s.put(1, &[0u8; 40]).unwrap();
        assert_eq!(s.used_bytes(), 40);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let s = MemStore::new(model());
        s.put(1, &[0u8; 100]).unwrap();
        s.remove(1).unwrap();
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(s.get(1), Err(DiskError::NotFound(1)));
        assert_eq!(s.remove(1), Err(DiskError::NotFound(1)));
    }

    #[test]
    fn capacity_enforced() {
        let s = MemStore::with_capacity(model(), 150);
        s.put(1, &[0u8; 100]).unwrap();
        let err = s.put(2, &[0u8; 100]).unwrap_err();
        assert_eq!(
            err,
            DiskError::OutOfSpace {
                need: 100,
                free: 50
            }
        );
        // Replacement that fits is fine even at high usage.
        s.put(1, &[0u8; 150]).unwrap();
        assert_eq!(s.used_bytes(), 150);
        assert_eq!(s.free_bytes(), 0);
    }

    #[test]
    fn read_faster_than_write_in_this_model() {
        let s = MemStore::new(model());
        let w = s.put(1, &[0u8; 1_000_000]).unwrap();
        let (_, r) = s.get(1).unwrap();
        assert!(r < w);
    }
}
