//! The backing-store abstraction behind the dynamic memory mapper.
//!
//! §3.3: when the DMM area lacks contiguous space, mapped objects are
//! swapped out "to the local disk"; §4.3 exhausts "all the free hard
//! disk space available" to reach a 117.77 GB shared object space. The
//! mapper only needs put/get/remove plus capacity accounting, so that is
//! the whole trait; three implementations trade realism for scale.

use lots_sim::{DiskModel, SimDuration};

/// Key identifying a swapped-out object's image on disk.
pub type SwapKey = u64;

/// Errors a backing store can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The key has no stored image (double-free or read-before-write).
    NotFound(SwapKey),
    /// The store's capacity would be exceeded.
    OutOfSpace { need: u64, free: u64 },
    /// Underlying I/O failure (file store only).
    Io(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::NotFound(k) => write!(f, "no swap image for key {k}"),
            DiskError::OutOfSpace { need, free } => {
                write!(f, "backing store full: need {need} bytes, {free} free")
            }
            DiskError::Io(e) => write!(f, "backing store I/O error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A swap backing store. All methods are `&self`: stores are shared
/// between a node's app thread and comm thread.
pub trait BackingStore: Send + Sync {
    /// The disk cost model this store charges time with. The swap
    /// subsystem builds its virtual-time device queue
    /// (`lots_sim::DiskQueue`) from the same model, so queued and
    /// store-reported timings agree.
    fn model(&self) -> DiskModel;

    /// Store (or replace) the image for `key`; returns the modeled disk
    /// time for the write.
    fn put(&self, key: SwapKey, data: &[u8]) -> Result<SimDuration, DiskError>;

    /// Fetch the image for `key`; returns the data and the modeled disk
    /// time for the read.
    fn get(&self, key: SwapKey) -> Result<(Vec<u8>, SimDuration), DiskError>;

    /// Discard the image for `key`, freeing its space.
    fn remove(&self, key: SwapKey) -> Result<(), DiskError>;

    /// Logical bytes currently stored (what counts against capacity).
    fn used_bytes(&self) -> u64;

    /// Capacity limit in logical bytes, if any.
    fn capacity_bytes(&self) -> Option<u64>;

    /// Remaining logical space, `u64::MAX` if unbounded.
    fn free_bytes(&self) -> u64 {
        match self.capacity_bytes() {
            Some(cap) => cap.saturating_sub(self.used_bytes()),
            None => u64::MAX,
        }
    }

    /// Total images stored.
    fn object_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            DiskError::NotFound(9).to_string(),
            "no swap image for key 9"
        );
        let e = DiskError::OutOfSpace { need: 10, free: 4 };
        assert!(e.to_string().contains("need 10"));
        assert!(DiskError::Io("boom".into()).to_string().contains("boom"));
    }
}
