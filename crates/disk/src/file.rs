//! File-backed store: real files on the real local disk.
//!
//! The closest analogue of the paper's actual mechanism — every swapped
//! object becomes a file under a spool directory, written and read with
//! buffered I/O. Reported *time* still comes from the [`DiskModel`] (the
//! virtual platform's disk, not the host's), so experiments stay
//! calibrated while the data path is genuine.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use lots_sim::{DiskModel, SimDuration};
use parking_lot::Mutex;

use crate::store::{BackingStore, DiskError, SwapKey};

/// Spool-directory backing store.
pub struct FileStore {
    model: DiskModel,
    dir: PathBuf,
    capacity: Option<u64>,
    inner: Mutex<Inner>,
    /// Remove the spool directory on drop.
    cleanup: bool,
}

#[derive(Default)]
struct Inner {
    sizes: HashMap<SwapKey, u64>,
    used: u64,
}

impl FileStore {
    /// Open (creating) a spool directory. The directory is removed on
    /// drop if `cleanup` is set.
    pub fn new(
        dir: impl Into<PathBuf>,
        model: DiskModel,
        capacity: Option<u64>,
        cleanup: bool,
    ) -> Result<FileStore, DiskError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(FileStore {
            model,
            dir,
            capacity,
            inner: Mutex::new(Inner::default()),
            cleanup,
        })
    }

    /// A store in a fresh unique temp directory (cleaned up on drop).
    pub fn temp(model: DiskModel) -> Result<FileStore, DiskError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "lots-swap-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        );
        FileStore::new(std::env::temp_dir().join(unique), model, None, true)
    }

    fn path_for(&self, key: SwapKey) -> PathBuf {
        self.dir.join(format!("obj-{key:016x}.swp"))
    }

    /// The spool directory in use.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl BackingStore for FileStore {
    fn model(&self) -> DiskModel {
        self.model
    }

    fn put(&self, key: SwapKey, data: &[u8]) -> Result<SimDuration, DiskError> {
        let mut inner = self.inner.lock();
        let replaced = inner.sizes.get(&key).copied().unwrap_or(0);
        let new_used = inner.used - replaced + data.len() as u64;
        if let Some(cap) = self.capacity {
            if new_used > cap {
                return Err(DiskError::OutOfSpace {
                    need: data.len() as u64,
                    free: cap.saturating_sub(inner.used - replaced),
                });
            }
        }
        let path = self.path_for(key);
        let mut f = std::io::BufWriter::new(
            fs::File::create(&path).map_err(|e| DiskError::Io(e.to_string()))?,
        );
        f.write_all(data)
            .map_err(|e| DiskError::Io(e.to_string()))?;
        f.flush().map_err(|e| DiskError::Io(e.to_string()))?;
        inner.sizes.insert(key, data.len() as u64);
        inner.used = new_used;
        Ok(self.model.write_time(data.len() as u64))
    }

    fn get(&self, key: SwapKey) -> Result<(Vec<u8>, SimDuration), DiskError> {
        let size = {
            let inner = self.inner.lock();
            *inner.sizes.get(&key).ok_or(DiskError::NotFound(key))?
        };
        let mut data = Vec::with_capacity(size as usize);
        fs::File::open(self.path_for(key))
            .map_err(|e| DiskError::Io(e.to_string()))?
            .read_to_end(&mut data)
            .map_err(|e| DiskError::Io(e.to_string()))?;
        Ok((data, self.model.read_time(size)))
    }

    fn remove(&self, key: SwapKey) -> Result<(), DiskError> {
        let mut inner = self.inner.lock();
        let size = inner.sizes.remove(&key).ok_or(DiskError::NotFound(key))?;
        inner.used -= size;
        fs::remove_file(self.path_for(key)).map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    fn object_count(&self) -> usize {
        self.inner.lock().sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel {
            per_op: SimDuration::from_micros(200),
            write_bps: 20_000_000,
            read_bps: 30_000_000,
        }
    }

    #[test]
    fn roundtrip_through_real_files() {
        let s = FileStore::temp(model()).unwrap();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        s.put(42, &data).unwrap();
        assert!(s.path_for(42).exists());
        let (back, _) = s.get(42).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.used_bytes(), 10_000);
    }

    #[test]
    fn remove_deletes_file() {
        let s = FileStore::temp(model()).unwrap();
        s.put(1, b"abc").unwrap();
        let p = s.path_for(1);
        assert!(p.exists());
        s.remove(1).unwrap();
        assert!(!p.exists());
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn temp_dir_cleaned_on_drop() {
        let dir;
        {
            let s = FileStore::temp(model()).unwrap();
            s.put(1, b"abc").unwrap();
            dir = s.dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }

    #[test]
    fn capacity_respected() {
        let dir = std::env::temp_dir().join(format!("lots-captest-{}", std::process::id()));
        let s = FileStore::new(&dir, model(), Some(100), true).unwrap();
        s.put(1, &[0u8; 80]).unwrap();
        assert!(matches!(
            s.put(2, &[0u8; 40]),
            Err(DiskError::OutOfSpace { .. })
        ));
    }

    #[test]
    fn missing_key_errors() {
        let s = FileStore::temp(model()).unwrap();
        assert_eq!(s.get(5).unwrap_err(), DiskError::NotFound(5));
    }
}
