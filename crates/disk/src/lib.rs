//! `lots-disk` — swap backing stores for the LOTS dynamic memory mapper.
//!
//! §3.3 of the paper swaps objects out of the DMM area "to the local
//! disk", and §4.3 sizes the shared object space by the free disk space
//! available (117.77 GB in their Dell PowerEdge test). This crate
//! provides the [`BackingStore`] trait the mapper uses plus three
//! implementations:
//!
//! * [`MemStore`] — real bytes in memory; default for tests.
//! * [`FileStore`] — real files in a spool directory; closest to the
//!   paper's mechanism.
//! * [`ModeledStore`] — exact logical capacity/timing accounting with
//!   RLE-compressed images; makes the paper's >4 GB and 117.77 GB
//!   experiments runnable at laptop scale (see `DESIGN.md`).
//!
//! All stores report virtual I/O durations from the platform's
//! [`lots_sim::DiskModel`]; the caller charges them to its clock.

pub mod file;
pub mod mem;
pub mod modeled;
pub mod rle;
pub mod store;

pub use file::FileStore;
pub use mem::MemStore;
pub use modeled::ModeledStore;
pub use rle::{CorruptImage, RleImage};
pub use store::{BackingStore, DiskError, SwapKey};
