//! Capacity- and timing-modeled store with compressed images.
//!
//! Used by the Table 1 / §4.3 experiments: the paper swaps >4 GB of
//! object data per run and allocates a 117.77 GB object space, far past
//! what a laptop-scale container should write for real. This store keeps
//! *logical* byte accounting (what counts against the platform's free
//! disk) exact, while holding images RLE-compressed in memory, so data
//! integrity is still verified end-to-end.

use std::collections::HashMap;

use lots_sim::{DiskModel, SimDuration};
use parking_lot::Mutex;

use crate::rle::RleImage;
use crate::store::{BackingStore, DiskError, SwapKey};

/// Modeled-disk store: exact logical accounting, compressed storage.
pub struct ModeledStore {
    model: DiskModel,
    capacity: Option<u64>,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    images: HashMap<SwapKey, RleImage>,
    used_logical: u64,
}

impl ModeledStore {
    pub fn new(model: DiskModel) -> ModeledStore {
        ModeledStore {
            model,
            capacity: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Store with a free-disk-space limit, as in §4.3 where allocation
    /// is bounded by "the free space available in the hard disks".
    pub fn with_capacity(model: DiskModel, capacity_bytes: u64) -> ModeledStore {
        ModeledStore {
            model,
            capacity: Some(capacity_bytes),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Actual host memory held by compressed images (diagnostic).
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .lock()
            .images
            .values()
            .map(|i| i.stored_len())
            .sum()
    }
}

impl BackingStore for ModeledStore {
    fn model(&self) -> DiskModel {
        self.model
    }

    fn put(&self, key: SwapKey, data: &[u8]) -> Result<SimDuration, DiskError> {
        let mut inner = self.inner.lock();
        let replaced = inner.images.get(&key).map_or(0, |i| i.logical_len() as u64);
        let new_used = inner.used_logical - replaced + data.len() as u64;
        if let Some(cap) = self.capacity {
            if new_used > cap {
                return Err(DiskError::OutOfSpace {
                    need: data.len() as u64,
                    free: cap.saturating_sub(inner.used_logical - replaced),
                });
            }
        }
        inner.images.insert(key, RleImage::encode(data));
        inner.used_logical = new_used;
        Ok(self.model.write_time(data.len() as u64))
    }

    fn get(&self, key: SwapKey) -> Result<(Vec<u8>, SimDuration), DiskError> {
        let inner = self.inner.lock();
        let img = inner.images.get(&key).ok_or(DiskError::NotFound(key))?;
        Ok((img.decode(), self.model.read_time(img.logical_len() as u64)))
    }

    fn remove(&self, key: SwapKey) -> Result<(), DiskError> {
        let mut inner = self.inner.lock();
        let img = inner.images.remove(&key).ok_or(DiskError::NotFound(key))?;
        inner.used_logical -= img.logical_len() as u64;
        Ok(())
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().used_logical
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    fn object_count(&self) -> usize {
        self.inner.lock().images.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel {
            per_op: SimDuration::from_micros(500),
            write_bps: 10_000_000,
            read_bps: 12_000_000,
        }
    }

    #[test]
    fn gigabytes_of_constant_data_stay_tiny() {
        let s = ModeledStore::new(model());
        // 256 "rows" of 4 MB each = 1 GB logical.
        let row: Vec<u8> = std::iter::repeat_n(3u32.to_le_bytes(), 1 << 20)
            .flatten()
            .collect();
        for k in 0..256 {
            s.put(k, &row).unwrap();
        }
        assert_eq!(s.used_bytes(), 256 * 4 * (1 << 20));
        assert!(
            s.resident_bytes() < 256 * 64,
            "resident={}",
            s.resident_bytes()
        );
        let (back, _) = s.get(17).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn timing_reflects_logical_size() {
        let s = ModeledStore::new(model());
        let row = vec![0u8; 10_000_000];
        let t = s.put(0, &row).unwrap();
        // 10 MB at 10 MB/s = 1 s + per_op.
        assert_eq!(
            t,
            SimDuration(1_000_000_000) + SimDuration::from_micros(500)
        );
    }

    #[test]
    fn capacity_limits_logical_bytes() {
        let s = ModeledStore::with_capacity(model(), 1_000_000);
        s.put(0, &vec![0u8; 600_000]).unwrap();
        let err = s.put(1, &vec![0u8; 600_000]).unwrap_err();
        assert!(matches!(err, DiskError::OutOfSpace { free: 400_000, .. }));
        s.remove(0).unwrap();
        s.put(1, &vec![0u8; 600_000]).unwrap();
    }

    #[test]
    fn nonrepetitive_data_roundtrips() {
        let s = ModeledStore::new(model());
        let data: Vec<u8> = (0..9999u32).flat_map(|i| i.to_le_bytes()).collect();
        s.put(5, &data).unwrap();
        let (back, _) = s.get(5).unwrap();
        assert_eq!(back, data);
    }
}
