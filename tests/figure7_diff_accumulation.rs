//! Figure 7 — eliminating the diff accumulation problem.
//!
//! A migratory object is updated under the same lock by many processes
//! in turn. In the TreadMarks-style scheme (Fig. 7a) the manager stores
//! whole diffs per timestamp and a late acquirer receives *every* diff
//! since its last visit — including words that later diffs overwrite.
//! LOTS (Fig. 7b) keeps a timestamp per field and computes the diff on
//! demand, "hence eliminating outdated data being sent".

use lots::core::{run_cluster, ClusterOptions, DiffMode, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;

/// The migratory pattern: `rounds` round-robin critical sections, each
/// rewriting the same 32 words of one object. Returns (final word 0,
/// cluster traffic bytes).
fn migratory_run(mode: DiffMode, rounds: usize) -> (i32, u64) {
    let mut cfg = LotsConfig::small(1 << 20);
    cfg.diff_mode = mode;
    let opts = ClusterOptions::new(4, cfg, p4_fedora());
    let (results, report) = run_cluster(opts, move |dsm| {
        let x = dsm.alloc::<i32>(64);
        // Pass the object around: each node updates it in turn.
        // Event-only run-barriers pin the acquisition order, so the
        // traffic measurement is deterministic.
        for round in 0..rounds {
            for turn in 0..dsm.n() {
                if turn == dsm.me() {
                    dsm.lock(3);
                    for w in 0..32 {
                        x.write(w, (round * 1000 + turn * 100 + w) as i32);
                    }
                    dsm.unlock(3);
                }
                dsm.run_barrier();
            }
        }
        dsm.barrier();
        x.read(0)
    });
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    // Grant payloads (where the two modes differ) are accounted at the
    // receiving side; count both directions.
    let bytes = report.total(|n| n.traffic.bytes_sent() + n.traffic.bytes_received());
    (results[0], bytes)
}

#[test]
fn both_modes_compute_the_same_values() {
    let (acc, _) = migratory_run(DiffMode::AccumulatedDiffs, 3);
    let (pf, _) = migratory_run(DiffMode::PerFieldOnDemand, 3);
    assert_eq!(acc, pf);
    // Last writer of word 0: round 2, turn 3.
    assert_eq!(acc, 2300, "last round's value of word 0");
}

#[test]
fn per_field_timestamps_send_less_than_accumulated_diffs() {
    // More rounds → more accumulated redundancy; the per-field scheme's
    // traffic stays near-flat per acquire.
    let (_, acc_bytes) = migratory_run(DiffMode::AccumulatedDiffs, 4);
    let (_, pf_bytes) = migratory_run(DiffMode::PerFieldOnDemand, 4);
    assert!(
        acc_bytes > pf_bytes,
        "accumulated {acc_bytes} B should exceed per-field {pf_bytes} B"
    );
}

#[test]
fn redundancy_grows_with_update_count() {
    // The gap between the modes must widen as the same fields keep
    // being rewritten (the essence of diff accumulation).
    let (_, acc_small) = migratory_run(DiffMode::AccumulatedDiffs, 2);
    let (_, pf_small) = migratory_run(DiffMode::PerFieldOnDemand, 2);
    let (_, acc_large) = migratory_run(DiffMode::AccumulatedDiffs, 6);
    let (_, pf_large) = migratory_run(DiffMode::PerFieldOnDemand, 6);
    let gap_small = acc_small.saturating_sub(pf_small);
    let gap_large = acc_large.saturating_sub(pf_large);
    assert!(
        gap_large > gap_small,
        "redundant bytes should grow: {gap_small} → {gap_large}"
    );
}
