//! PR 9 acceptance: the lossy network model is invisible to
//! applications and fatal only when told to be.
//!
//! * A seeded plan with loss, duplication, reordering and a healing
//!   minority partition yields checksums byte-identical to the
//!   fault-free run on SOR, RX and object churn, across LOTS, LOTS-x
//!   and JIAJIA — and replays bit for bit, counters included.
//! * Property-tested: random plans (never isolating a majority) keep
//!   that guarantee on every system.
//! * The faulted schedule is engine-invariant: `Parallel{4}` equals
//!   the `Deterministic` oracle byte for byte.
//! * With retransmission on, recoverable loss never trips the
//!   deadlock detector. With it off, the detector names the missing
//!   `(src, dst, seq)` instead of reporting an anonymous hang.
//! * The recovery counters flow into [`RunOutcome`].

use lots::apps::runner::{run_app, RunConfig, RunOutcome, System};
use lots::apps::{churn::ChurnParams, rx::RxParams, sor::SorParams};
use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;
use lots::sim::{
    CrashFault, FaultPlan, Partition, Retransmit, SchedulerMode, SimDuration, SimInstant,
};
use proptest::prelude::*;

const SOR_SMALL: SorParams = SorParams { n: 64, iters: 8 };
const RX_SMALL: RxParams = RxParams {
    total: 1 << 12,
    passes: 2,
    seed: 20040920,
};
const CHURN_SMALL: ChurnParams = ChurnParams {
    phases: 6,
    objs_per_phase: 2,
    elems: 2048,
    retain: 1,
    ckpt_elems: 16,
};

const SYSTEMS: [System; 3] = [System::Lots, System::LotsX, System::Jiajia];

/// Everything a replay must reproduce: results, virtual time, traffic,
/// and the new recovery counters.
fn outcome_fingerprint(o: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "chk={} exec={} bytes={} msgs={} drop={} rtx={} dup={} rj={}/{}",
        o.combined.checksum,
        o.exec_time.nanos(),
        o.bytes_sent,
        o.msgs_sent,
        o.msgs_dropped,
        o.msgs_retransmitted,
        o.dups_filtered,
        o.rejoin_rounds,
        o.rejoin_bytes,
    );
    for (i, n) in o.per_node.iter().enumerate() {
        let _ = write!(s, " n{i}=({},{})", n.checksum, n.elapsed.nanos());
    }
    s
}

fn cfg(system: System, mode: SchedulerMode, faults: FaultPlan) -> RunConfig {
    let mut c = RunConfig::new(system, 4, p4_fedora());
    c.seed = 42;
    c.scheduler = mode;
    c.faults = faults;
    c
}

/// The committed stress plan: ~4% loss, duplication, reordering and a
/// minority partition that heals mid-run. Retransmission (the default)
/// makes every loss recoverable.
fn stress_plan() -> FaultPlan {
    FaultPlan {
        seed: 777,
        loss_permille: 40,
        dup_permille: 25,
        reorder_permille: 50,
        partitions: vec![Partition {
            start: SimInstant(500_000),
            end: SimInstant(4_000_000),
            islanders: vec![3],
        }],
        ..FaultPlan::none()
    }
}

fn run_one(system: System, mode: SchedulerMode, faults: FaultPlan, which: usize) -> RunOutcome {
    match which {
        0 => run_app(&cfg(system, mode, faults), SOR_SMALL),
        1 => run_app(&cfg(system, mode, faults), RX_SMALL),
        _ => run_app(&cfg(system, mode, faults), CHURN_SMALL),
    }
}

#[test]
fn stress_plan_preserves_checksums_on_every_system_and_workload() {
    for system in SYSTEMS {
        for (which, label) in [(0, "sor"), (1, "rx"), (2, "churn")] {
            let clean = run_one(
                system,
                SchedulerMode::Deterministic,
                FaultPlan::none(),
                which,
            );
            let faulted = run_one(system, SchedulerMode::Deterministic, stress_plan(), which);
            assert_eq!(
                clean.combined.checksum, faulted.combined.checksum,
                "{system:?}/{label}: the fault plan changed the answer"
            );
            assert_eq!(
                faulted.msgs_dropped, 0,
                "{system:?}/{label}: retransmission must recover every loss"
            );
            let replay = run_one(system, SchedulerMode::Deterministic, stress_plan(), which);
            assert_eq!(
                outcome_fingerprint(&faulted),
                outcome_fingerprint(&replay),
                "{system:?}/{label}: the faulted run must replay bit for bit"
            );
        }
    }
}

#[test]
fn faulted_schedule_is_engine_invariant() {
    for (which, label) in [(0, "sor"), (2, "churn")] {
        let oracle = run_one(
            System::Lots,
            SchedulerMode::Deterministic,
            stress_plan(),
            which,
        );
        let pooled = run_one(
            System::Lots,
            SchedulerMode::Parallel { workers: 4 },
            stress_plan(),
            which,
        );
        assert_eq!(
            outcome_fingerprint(&oracle),
            outcome_fingerprint(&pooled),
            "{label}: Parallel{{4}} diverged from the oracle under faults"
        );
    }
}

#[test]
fn recovery_counters_flow_into_the_outcome() {
    let faulted = run_one(System::Lots, SchedulerMode::Deterministic, stress_plan(), 2);
    assert!(
        faulted.msgs_retransmitted > 0,
        "4% loss over a churn run must retransmit at least once"
    );
    assert!(
        faulted.dups_filtered > 0,
        "2.5% duplication over a churn run must filter at least one dup"
    );
    assert_eq!(faulted.rejoin_rounds, 0, "no crash was scheduled");
    assert_eq!(faulted.rejoin_bytes, 0);

    let crash = FaultPlan {
        crash_node: Some(CrashFault {
            node: 1,
            at_barrier: 1,
            reboot: SimDuration::from_millis(10),
        }),
        ..stress_plan()
    };
    let rejoined = run_one(System::Lots, SchedulerMode::Deterministic, crash, 2);
    assert_eq!(rejoined.rejoin_rounds, 1, "one crash, one rejoin");
    assert!(rejoined.rejoin_bytes > 0, "the rebuild moves real bytes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random seeded plans — loss, duplication, reordering, and an
    /// optional single-node (minority) partition — never change what
    /// any system computes, and the perturbed runs replay exactly.
    #[test]
    fn random_lossy_plans_never_change_checksums(
        fault_seed in any::<u64>(),
        loss in 1u16..70,
        dup in 0u16..40,
        reorder in 0u16..60,
        islander in 0usize..4,
        cut_roll in 0u64..4,
        cut_start in 0u64..2_000_000,
        which in 0usize..3,
    ) {
        // ~75% of cases also sever one node (a minority of 4) for a
        // window that heals well inside the retry budget.
        let partitions = if cut_roll > 0 {
            vec![Partition {
                start: SimInstant(cut_start),
                end: SimInstant(cut_start + 3_000_000),
                islanders: vec![islander],
            }]
        } else {
            Vec::new()
        };
        let faults = FaultPlan {
            seed: fault_seed,
            loss_permille: loss,
            dup_permille: dup,
            reorder_permille: reorder,
            partitions,
            ..FaultPlan::none()
        };
        for system in SYSTEMS {
            let clean = run_one(system, SchedulerMode::Deterministic, FaultPlan::none(), which);
            let faulted = run_one(system, SchedulerMode::Deterministic, faults.clone(), which);
            prop_assert_eq!(
                clean.combined.checksum,
                faulted.combined.checksum,
                "{:?}: plan {:?} changed the answer", system, faults
            );
            prop_assert_eq!(faulted.msgs_dropped, 0);
            let replay = run_one(system, SchedulerMode::Deterministic, faults.clone(), which);
            prop_assert_eq!(
                outcome_fingerprint(&faulted),
                outcome_fingerprint(&replay),
                "{:?}: faulted run drifted on replay", system
            );
        }
    }
}

/// Heavy but recoverable loss: the deadlock detector must stay silent,
/// because every blocked wait is resolved by a scheduled retransmission
/// in bounded virtual time.
#[test]
fn recoverable_loss_never_trips_the_deadlock_detector() {
    let faults = FaultPlan {
        seed: 13,
        loss_permille: 200,
        ..FaultPlan::none()
    };
    let clean = run_one(
        System::Lots,
        SchedulerMode::Deterministic,
        FaultPlan::none(),
        0,
    );
    let faulted = run_one(System::Lots, SchedulerMode::Deterministic, faults, 0);
    assert_eq!(clean.combined.checksum, faulted.combined.checksum);
    assert_eq!(faulted.msgs_dropped, 0);
    assert!(faulted.msgs_retransmitted > 0, "20% loss must retransmit");
}

/// With retransmission disabled, a first-attempt loss is final: the
/// requester blocks forever and the deadlock snapshot must name the
/// exact missing messages, not report an anonymous hang.
#[test]
#[should_panic(expected = "messages dropped without retransmission")]
fn unrecoverable_drop_is_named_in_the_deadlock_snapshot() {
    let faults = FaultPlan {
        seed: 13,
        loss_permille: 400,
        retransmit: Retransmit {
            enabled: false,
            ..Retransmit::default()
        },
        ..FaultPlan::none()
    };
    let opts = ClusterOptions::new(4, LotsConfig::small(1 << 20), p4_fedora()).with_faults(faults);
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(256);
        let per = 256 / dsm.n();
        for i in 0..per {
            a.write(dsm.me() * per + i, (i + 1) as i64);
        }
        dsm.barrier();
        let mut sum = 0i64;
        for i in 0..256 {
            sum += a.read(i); // remote reads: some request or reply drops
        }
        dsm.barrier();
        sum
    });
}
