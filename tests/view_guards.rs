//! View-guard semantics: one access check per guard, statement-style
//! pinning for the guard's lifetime, write-back on drop, the live-view
//! sync fence, and the explicit empty-tail handles of `offset(len)`.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;

fn lots_opts(dmm: usize) -> ClusterOptions {
    ClusterOptions::new(1, LotsConfig::small(dmm), p4_fedora())
}

#[test]
fn view_charges_one_check_for_any_range() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i64>(256);
        a.fill(7);
        let before = dsm.stats().access_checks();
        let whole = a.view(0..256);
        let after_view = dsm.stats().access_checks();
        let sum: i64 = whole.iter().sum();
        drop(whole);
        let after_loop = dsm.stats().access_checks();
        (after_view - before, after_loop - after_view, sum)
    });
    assert_eq!(results[0].0, 1, "one check per guard, not per element");
    assert_eq!(results[0].1, 0, "inner-loop reads are unchecked");
    assert_eq!(results[0].2, 7 * 256);
}

#[test]
fn view_mut_writes_back_on_drop_with_one_check() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(64);
        let before = dsm.stats().access_checks();
        {
            let mut w = a.view_mut(8..24);
            for (k, slot) in w.iter_mut().enumerate() {
                *slot = k as i32;
            }
        }
        let checks = dsm.stats().access_checks() - before;
        (checks, a.read(8), a.read(23), a.read(24))
    });
    // One check for the whole guarded write scope.
    assert_eq!(results[0].0, 1);
    assert_eq!((results[0].1, results[0].2, results[0].3), (0, 15, 0));
}

#[test]
fn empty_views_touch_nothing_and_charge_nothing() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(8);
        let before = dsm.stats().access_checks();
        let v = a.view(3..3);
        assert!(v.is_empty());
        drop(v);
        let _w = a.view_mut(0..0);
        dsm.stats().access_checks() - before
    });
    assert_eq!(results[0], 0);
}

#[test]
fn guards_pin_like_statements() {
    // Three 12 KB objects, 32 KB lower half: two fit. Holding views of
    // two objects pins both (§3.3), so touching the third fails with
    // the §5 condition; after the guards drop, eviction resumes.
    let (results, _) = run_cluster(lots_opts(64 * 1024), |dsm| {
        let a = dsm.alloc::<i64>(1536);
        let b = dsm.alloc::<i64>(1536);
        let c = dsm.alloc::<i64>(1536);
        let va = a.view(0..1);
        let vb = b.view(0..1);
        let pinned_fails = c.try_read(0).is_err();
        drop(vb);
        drop(va);
        let after_ok = c.try_read(0).is_ok();
        (pinned_fails, after_ok)
    });
    assert_eq!(results[0], (true, true));
}

#[test]
#[should_panic(expected = "barrier while view guards are live")]
fn barrier_inside_a_live_view_panics() {
    run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(16);
        let _v = a.view(0..16);
        dsm.barrier();
    });
}

#[test]
#[should_panic(expected = "lock while view guards are live")]
fn jiajia_lock_inside_a_live_view_panics() {
    run_jiajia_cluster(JiaOptions::new(1, 4 << 20, p4_fedora()), |dsm| {
        let a = dsm.alloc::<i32>(16);
        let _v = a.view_mut(0..16);
        dsm.lock(1);
    });
}

#[test]
fn jiajia_views_mirror_lots_views() {
    let (results, _) = run_jiajia_cluster(JiaOptions::new(1, 4 << 20, p4_fedora()), |dsm| {
        let a = dsm.alloc::<i64>(100);
        {
            let mut w = a.view_mut(10..20);
            w.fill(5);
        }
        let sum = a.view(0..100).iter().sum::<i64>();
        sum
    });
    assert_eq!(results[0], 50);
}

#[test]
#[should_panic(expected = "overlap a live mutable view")]
fn overlapping_mutable_views_are_rejected() {
    run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(64);
        let _g1 = a.view_mut(0..8);
        let _g2 = a.view_mut(4..12); // overlaps g1: last-drop would clobber
    });
}

#[test]
#[should_panic(expected = "overlap a live mutable view")]
fn element_read_under_a_live_mutable_view_is_rejected() {
    run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(64);
        let mut g = a.view_mut(0..8);
        g[0] = 5; // pending in the buffer only
        let _ = a.read(0); // would observe the stale pre-guard value
    });
}

#[test]
#[should_panic(expected = "overlap a live read view")]
fn jiajia_write_under_a_live_read_view_is_rejected() {
    run_jiajia_cluster(JiaOptions::new(1, 4 << 20, p4_fedora()), |dsm| {
        let a = dsm.alloc::<i32>(64);
        let _g = a.view(0..8);
        a.write(3, 1); // the live view's snapshot would go stale
    });
}

#[test]
fn disjoint_views_interleave_freely() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(64);
        a.write_from(0, &[1; 32]);
        // Read view of the lower half + mutable view of the upper half
        // of the *same object*, plus element ops outside both.
        let src = a.view(0..32);
        let upper = a.offset(32);
        let mut dst = upper.view_mut(0..16);
        for k in 0..16 {
            dst[k] = src[k] + 1;
        }
        drop(dst);
        drop(src);
        (a.read(32), a.read(47), a.read(48))
    });
    assert_eq!(results[0], (2, 2, 0));
}

// ----------------------------------------------------------------------
// offset(len): explicit empty-tail handles (regression)
// ----------------------------------------------------------------------

#[test]
fn offset_len_yields_explicit_empty_tail() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(8);
        let tail = a.offset(8);
        assert!(tail.is_empty());
        assert_eq!(tail.len(), 0);
        // Empty bulk ops and views succeed without touching the object.
        tail.write_from(0, &[]);
        let mut out: [i32; 0] = [];
        tail.read_into(0, &mut out);
        tail.fill(1);
        assert!(tail.view(0..0).is_empty());
        assert!(tail.try_view_mut(0..0).is_ok());
        // Nested arithmetic at the end stays legal.
        assert!(tail.offset(0).is_empty());
        assert!(tail.prefix(0).is_empty());
        true
    });
    assert!(results[0]);
}

#[test]
#[should_panic(expected = "empty handle")]
fn empty_tail_element_read_panics_with_clear_message() {
    run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(8);
        a.offset(8).read(0);
    });
}

#[test]
#[should_panic(expected = "empty handle")]
fn jiajia_empty_tail_write_panics_with_clear_message() {
    run_jiajia_cluster(JiaOptions::new(1, 4 << 20, p4_fedora()), |dsm| {
        let a = dsm.alloc::<i32>(8);
        a.offset(8).write(0, 1);
    });
}

#[test]
fn prefix_restricts_the_handle() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(16);
        a.write(4, 42);
        let mid = a.offset(4).prefix(4); // elements 4..8
        assert_eq!(mid.len(), 4);
        (
            mid.read(0),
            mid.try_view(0..4).map(|v| v.len()).unwrap_or(0),
        )
    });
    assert_eq!(results[0], (42, 4));
}
