//! Public-API semantics: the `Pointer<T>` behaviours §3.2/§3.3 promise
//! (pointer arithmetic, statement pinning, bulk element accounting)
//! and their JIAJIA counterparts.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;

fn lots_opts(dmm: usize) -> ClusterOptions {
    ClusterOptions::new(1, LotsConfig::small(dmm), p4_fedora())
}

#[test]
fn pointer_arithmetic_matches_paper_example() {
    // "* (a+4) = 1" is valid in LOTS (§3.3).
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(16);
        let shifted = a.offset(4);
        shifted.write(0, 1); // *(a+4) = 1
        assert_eq!(shifted.len(), 12);
        let nested = shifted.offset(2); // (a+4)+2
        nested.write(0, 7);
        (a.read(4), a.read(6))
    });
    assert_eq!(results[0], (1, 7));
}

#[test]
// The out-of-bounds panic fires on the app thread; the runtime poisons
// the cluster and re-raises the original panic from run_cluster.
#[should_panic(expected = "pointer arithmetic out of bounds")]
fn pointer_arithmetic_past_the_end_panics() {
    run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i32>(8);
        a.offset(9);
    });
}

#[test]
fn update_is_read_modify_write_with_two_checks() {
    let (results, report) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<i64>(4);
        a.write(2, 10);
        let before = dsm.stats().access_checks();
        a.update(2, |v| v * 3);
        let after = dsm.stats().access_checks();
        (a.read(2), after - before)
    });
    assert_eq!(results[0].0, 30);
    assert_eq!(results[0].1, 2, "a[i] += x is two checked accesses");
    assert!(report.exec_time.nanos() > 0);
}

#[test]
fn bulk_ops_charge_one_check_per_element() {
    let (results, _) = run_cluster(lots_opts(1 << 20), |dsm| {
        let a = dsm.alloc::<f64>(100);
        let before = dsm.stats().access_checks();
        a.write_from(10, &[1.5; 25]);
        let mid = dsm.stats().access_checks();
        let v = a.read_vec(10, 25);
        let after = dsm.stats().access_checks();
        (mid - before, after - mid, v[24])
    });
    assert_eq!(results[0], (25, 25, 1.5));
}

#[test]
fn statement_guard_keeps_operands_resident() {
    // a[5] = b[5] + c[5] with all three objects under one statement:
    // the mapper may evict none of them mid-statement (§3.3's pinning),
    // so with room for only two of three the access fails loudly
    // instead of silently swapping an operand away.
    let (results, _) = run_cluster(lots_opts(64 * 1024), |dsm| {
        let a = dsm.alloc::<i64>(1536); // 12 KB each,
        let b = dsm.alloc::<i64>(1536); // 32 KB lower half
        let c = dsm.alloc::<i64>(1536);
        b.write(5, 20);
        c.write(5, 22);
        // Without a statement guard the three accesses pin one at a
        // time and eviction keeps the program running.
        let sum = b.read(5) + c.read(5);
        a.write(5, sum);
        let unguarded_ok = a.read(5) == 42;
        // Under one guard the third operand cannot be mapped.
        let stmt = dsm.statement();
        let _ = b.read(5);
        let _ = c.read(5);
        let guarded_fails = a.try_read(5).is_err();
        drop(stmt);
        (unguarded_ok, guarded_fails)
    });
    assert_eq!(results[0], (true, true));
}

#[test]
fn jiajia_slice_mirrors_the_api() {
    let opts = JiaOptions::new(1, 4 << 20, p4_fedora());
    let (results, _) = run_jiajia_cluster(opts, |dsm| {
        let a = dsm.alloc::<i32>(64);
        let shifted = a.offset(4);
        shifted.write(0, 1);
        shifted.update(0, |v| v + 41);
        a.write_from(10, &[9; 5]);
        (a.read(4), a.read_vec(10, 5).iter().sum::<i32>())
    });
    assert_eq!(results[0], (42, 45));
}

#[test]
fn allocations_agree_across_nodes_spmd_style() {
    // Object IDs come from allocation order; nodes allocating in the
    // same order can exchange handles implicitly (the known-to-all
    // object ID of §3.2).
    let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let first = dsm.alloc::<i32>(8);
        let second = dsm.alloc::<i32>(8);
        assert_eq!(first.id().0, 0);
        assert_eq!(second.id().0, 1);
        if dsm.me() == 1 {
            second.write(0, 99);
        }
        dsm.barrier();
        second.read(0)
    });
    assert_eq!(results, vec![99, 99, 99]);
}

#[test]
fn run_barrier_has_no_memory_effects_but_synchronizes() {
    let opts = ClusterOptions::new(2, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i32>(4);
        if dsm.me() == 0 {
            a.write(0, 5);
        }
        dsm.run_barrier(); // event-only (§3.6)
        let stale = a.read(0); // node 1 still sees its initial zeros
        dsm.barrier(); // full memory barrier
        (stale, a.read(0))
    });
    assert_eq!(results[0], (5, 5));
    assert_eq!(results[1].0, 0, "run_barrier must not propagate data");
    assert_eq!(results[1].1, 5, "the real barrier must");
}

#[test]
fn swapped_bytes_reports_backing_store_usage() {
    let (results, _) = run_cluster(lots_opts(64 * 1024), |dsm| {
        let a = dsm.alloc::<i64>(1536);
        let b = dsm.alloc::<i64>(1536);
        let c = dsm.alloc::<i64>(1536);
        a.write(0, 1);
        b.write(0, 2);
        c.write(0, 3); // evicts a
        (dsm.swapped_bytes() > 0, dsm.total_object_bytes())
    });
    assert!(results[0].0);
    assert_eq!(results[0].1, 3 * 1536 * 8);
}
