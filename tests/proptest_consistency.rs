//! Property tests: randomized barrier-synchronized programs must agree
//! with a plain in-memory model, on both DSMs, under swap pressure.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;
use proptest::prelude::*;

/// One interval of a random SPMD program: per node, a set of writes
/// into its *own* stripe of each object (data-race-free by design, as
/// ScC requires), followed by a barrier and a full read-back.
#[derive(Debug, Clone)]
struct Script {
    objects: usize,
    elems: usize,
    /// writes[interval][node] = (object, stripe index, value)
    writes: Vec<Vec<Vec<(usize, usize, i32)>>>,
}

fn script_strategy(nodes: usize) -> impl Strategy<Value = Script> {
    (2usize..5, 8usize..33).prop_flat_map(move |(objects, elems)| {
        let per = elems / nodes;
        let interval = proptest::collection::vec(
            proptest::collection::vec((0..objects, 0..per.max(1), any::<i32>()), 0..6),
            nodes,
        );
        proptest::collection::vec(interval, 1..4).prop_map(move |writes| Script {
            objects,
            elems,
            writes,
        })
    })
}

/// The reference: apply every node's writes interval by interval.
fn model(script: &Script, nodes: usize) -> Vec<Vec<i32>> {
    let per = script.elems / nodes;
    let mut state = vec![vec![0i32; script.elems]; script.objects];
    for interval in &script.writes {
        for (node, writes) in interval.iter().enumerate() {
            for &(obj, i, v) in writes {
                state[obj][node * per + i] = v;
            }
        }
    }
    state
}

fn checksum(state: &[Vec<i32>]) -> u64 {
    state
        .iter()
        .flat_map(|o| o.iter())
        .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v as u64))
}

fn run_lots(script: Script, nodes: usize, dmm: usize) -> u64 {
    let opts = ClusterOptions::new(nodes, LotsConfig::small(dmm), p4_fedora());
    let script = std::sync::Arc::new(script);
    let (results, _) = run_cluster(opts, move |dsm| {
        let per = script.elems / nodes;
        let objs: Vec<_> = (0..script.objects)
            .map(|_| dsm.alloc::<i32>(script.elems))
            .collect();
        for interval in &script.writes {
            for &(obj, i, v) in &interval[dsm.me()] {
                objs[obj].write(dsm.me() * per + i, v);
            }
            dsm.barrier();
        }
        // Read back everything in canonical order on node 0.
        if dsm.me() == 0 {
            let state: Vec<Vec<i32>> = objs.iter().map(|o| o.read_vec(0, script.elems)).collect();
            checksum(&state)
        } else {
            0
        }
    });
    results[0]
}

fn run_jia(script: Script, nodes: usize) -> u64 {
    let opts = JiaOptions::new(nodes, 16 << 20, p4_fedora());
    let script = std::sync::Arc::new(script);
    let (results, _) = run_jiajia_cluster(opts, move |dsm| {
        let per = script.elems / nodes;
        let objs: Vec<_> = (0..script.objects)
            .map(|_| dsm.alloc::<i32>(script.elems))
            .collect();
        for interval in &script.writes {
            for &(obj, i, v) in &interval[dsm.me()] {
                objs[obj].write(dsm.me() * per + i, v);
            }
            dsm.barrier();
        }
        if dsm.me() == 0 {
            let state: Vec<Vec<i32>> = objs.iter().map(|o| o.read_vec(0, script.elems)).collect();
            checksum(&state)
        } else {
            0
        }
    });
    results[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lots_matches_model(script in script_strategy(2)) {
        let expected = checksum(&model(&script, 2));
        prop_assert_eq!(run_lots(script, 2, 4 << 20), expected);
    }

    #[test]
    fn lots_matches_model_under_swap_pressure(script in script_strategy(2)) {
        let expected = checksum(&model(&script, 2));
        // A deliberately tiny DMM keeps objects cycling through disk.
        prop_assert_eq!(run_lots(script, 2, 16 * 1024), expected);
    }

    #[test]
    fn jiajia_matches_model(script in script_strategy(2)) {
        let expected = checksum(&model(&script, 2));
        prop_assert_eq!(run_jia(script, 2), expected);
    }
}
