//! The swap-subsystem acceptance battery (PR 4).
//!
//! * For every swap policy (and random knob combinations), shrunken-
//!   arena LOTS runs — where the working set overcommits the DMM area
//!   and the swap machinery churns — compute **byte-identical results**
//!   to roomy no-swap runs, and their reports reproduce exactly across
//!   same-seed reruns (extending the PR 2/PR 3 determinism pattern).
//! * All three systems (LOTS, LOTS-x, JIAJIA) agree on the workload
//!   under their respective memory pressure.
//! * The pin/evict fence: objects under live `view`/`view_mut` guards
//!   are never evicted mid-statement, however hard the DMM area is
//!   squeezed, and exhausting the DMM with pinned objects fails loudly
//!   with the §5 error instead of corrupting or hanging.
//! * `swapped_bytes` reports actual store-resident (compressed) bytes,
//!   and `resident + swapped == allocated` holds (regression).

use lots::core::{
    run_cluster, ClusterOptions, ClusterReport, DsmApi, DsmSlice, LotsConfig, LotsError,
    SwapConfig, SwapPolicyKind,
};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;
use lots::sim::ALL_CATEGORIES;
use proptest::prelude::*;

const OBJS: usize = 16;
const LEN: usize = 1024; // i64 elements → 8 KB per object
const TINY_DMM: usize = 64 * 1024; // lower half 32 KB: 4 of 16 objects fit
const ROOMY_DMM: usize = 4 << 20;

/// Non-repetitive per-element data so compression can't trivialize the
/// images and every byte matters to the checksum.
fn mix(seed: u64, r: usize, i: usize) -> i64 {
    let mut x = seed
        .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x ^ (x >> 31)) as i64
}

/// The swap-churn kernel: strided fills, cross-node reads, a lock-
/// guarded counter — every phase forces objects through the swap path
/// on a tiny arena.
fn churn_kernel<D: DsmApi>(dsm: &D) -> u64 {
    let rows: Vec<D::Slice<'_, i64>> = (0..OBJS).map(|_| dsm.alloc::<i64>(LEN)).collect();
    let (me, n) = (dsm.me(), dsm.n());
    for r in (me..OBJS).step_by(n) {
        let mut v = rows[r].view_mut(0..LEN);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = mix(dsm.seed(), r, i);
        }
    }
    dsm.barrier();
    let mut sum = 0u64;
    for row in &rows {
        let s = row
            .view(0..LEN)
            .iter()
            .fold(0u64, |a, &v| a.wrapping_add(v as u64));
        sum = sum.wrapping_mul(31).wrapping_add(s);
    }
    let me_word = dsm.me();
    dsm.with_lock(1, || rows[0].update(me_word, |v| v.wrapping_add(1)));
    dsm.barrier();
    // Scope Consistency: CS writes are guaranteed visible to the next
    // acquirer of the same lock, so the tail is read under it.
    let tail: i64 = dsm.with_lock(1, || {
        (0..n).fold(0i64, |a, k| a.wrapping_add(rows[0].read(k)))
    });
    dsm.barrier();
    sum.wrapping_add(tail as u64)
}

/// Every observable number in a LOTS report, swap counters included.
fn fingerprint(r: &ClusterReport) -> String {
    use std::fmt::Write as _;
    let mut s = format!("seed={} exec={}", r.seed, r.exec_time.nanos());
    for nd in &r.nodes {
        let _ = write!(
            s,
            " [{} t={} chk={} sw={}/{} swb={}/{} batches={} pre={} obj={} swap={}/{} res={} tx={}/{}",
            nd.me,
            nd.time.nanos(),
            nd.stats.access_checks(),
            nd.stats.swaps_out(),
            nd.stats.swaps_in(),
            nd.stats.swap_out_bytes(),
            nd.stats.swap_in_bytes(),
            nd.stats.swap_batches(),
            nd.stats.prefetch_hits(),
            nd.object_bytes,
            nd.swapped_bytes,
            nd.swapped_logical_bytes,
            nd.resident_bytes,
            nd.traffic.msgs_sent(),
            nd.traffic.bytes_sent(),
        );
        for cat in ALL_CATEGORIES {
            let _ = write!(s, " {}={}", cat.name(), nd.stats.time_in(cat).nanos());
        }
        s.push(']');
    }
    s
}

fn lots_run(dmm: usize, swap: SwapConfig, seed: u64) -> (Vec<u64>, ClusterReport) {
    let opts =
        ClusterOptions::new(2, LotsConfig::small(dmm).with_swap(swap), p4_fedora()).with_seed(seed);
    run_cluster(opts, churn_kernel)
}

#[test]
fn every_policy_matches_the_no_swap_run_and_reproduces() {
    let (no_swap, roomy_report) = lots_run(ROOMY_DMM, SwapConfig::default(), 7);
    assert_eq!(
        roomy_report.total(|n| n.stats.swaps_out()),
        0,
        "roomy baseline must not swap"
    );
    for policy in SwapPolicyKind::ALL {
        let swap = SwapConfig {
            policy,
            batch_evict: 4,
            read_ahead: true,
            compress: true,
        };
        let (r1, rep1) = lots_run(TINY_DMM, swap, 7);
        let (r2, rep2) = lots_run(TINY_DMM, swap, 7);
        assert_eq!(
            r1, no_swap,
            "{policy:?}: swapping must not change application results"
        );
        assert_eq!(r1, r2, "{policy:?}: same-seed reruns must agree");
        assert_eq!(
            fingerprint(&rep1),
            fingerprint(&rep2),
            "{policy:?}: report must be byte-identical across reruns"
        );
        assert!(
            rep1.total(|n| n.stats.swaps_out()) > 0,
            "{policy:?}: the tiny arena must force swapping"
        );
    }
}

#[test]
fn legacy_and_tuned_bundles_agree_on_results() {
    let (baseline, _) = lots_run(ROOMY_DMM, SwapConfig::default(), 3);
    for swap in [SwapConfig::legacy(), SwapConfig::tuned()] {
        let (r, rep) = lots_run(TINY_DMM, swap, 3);
        assert_eq!(r, baseline, "{swap:?}");
        assert!(rep.total(|n| n.stats.swaps_out()) > 0);
    }
}

#[test]
fn all_three_systems_agree_under_memory_pressure() {
    // LOTS overcommits a tiny arena 4×; LOTS-x and JIAJIA get the
    // smallest memory that still fits (they cannot swap — §1).
    let (lots, lots_rep) = lots_run(TINY_DMM, SwapConfig::tuned(), 11);
    assert!(lots_rep.total(|n| n.stats.swaps_out()) > 0);

    let lotsx_opts = ClusterOptions::new(2, LotsConfig::lots_x(1 << 20), p4_fedora()).with_seed(11);
    let (lotsx, _) = run_cluster(lotsx_opts, churn_kernel);

    let jia_opts = JiaOptions::new(2, 1 << 20, p4_fedora()).with_seed(11);
    let (jia, _) = run_jiajia_cluster(jia_opts, churn_kernel);

    assert_eq!(lots, lotsx, "LOTS vs LOTS-x");
    assert_eq!(lots, jia, "LOTS vs JIAJIA");

    // And each constrained system reproduces byte-for-byte too.
    let jia_opts = JiaOptions::new(2, 1 << 20, p4_fedora()).with_seed(11);
    let (jia2, _) = run_jiajia_cluster(jia_opts, churn_kernel);
    assert_eq!(jia, jia2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random knob combinations: any policy × batch × read-ahead ×
    /// compression × seed preserves results and replays exactly.
    #[test]
    fn random_swap_configs_preserve_results_and_reproduce(
        policy_ix in 0usize..3,
        batch in 1usize..6,
        read_ahead in any::<bool>(),
        compress in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let swap = SwapConfig {
            policy: SwapPolicyKind::ALL[policy_ix],
            batch_evict: batch,
            read_ahead,
            compress,
        };
        let (baseline, _) = lots_run(ROOMY_DMM, SwapConfig::default(), seed);
        let (r1, rep1) = lots_run(TINY_DMM, swap, seed);
        let (r2, rep2) = lots_run(TINY_DMM, swap, seed);
        prop_assert_eq!(&r1, &baseline);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(fingerprint(&rep1), fingerprint(&rep2));
    }
}

#[test]
fn live_view_guards_pin_objects_through_extreme_pressure() {
    // Every round holds a mutable guard over the same hot object while
    // opening a second guard on a round-robin object: the second
    // mapping must evict *around* the live guard — a DMM area that
    // holds 4 objects churns through 16 without ever stealing the
    // guarded block mid-statement. Run on every policy.
    for policy in SwapPolicyKind::ALL {
        let swap = SwapConfig {
            policy,
            ..SwapConfig::tuned()
        };
        let opts = ClusterOptions::new(1, LotsConfig::small(TINY_DMM).with_swap(swap), p4_fedora());
        let (results, report) = run_cluster(opts, move |dsm| {
            let rows: Vec<_> = (0..OBJS).map(|_| dsm.alloc::<i64>(LEN)).collect();
            let hot = rows[0];
            for (round, row) in rows.iter().enumerate().skip(1) {
                let mut ga = hot.view_mut(0..LEN);
                // Opening this guard needs DMM space: the mapper must
                // evict among the *unpinned* objects only.
                let mut gb = row.view_mut(0..LEN);
                assert!(
                    dsm.object_mapped(hot.id()) && dsm.object_mapped(row.id()),
                    "a live guard's object was evicted mid-statement"
                );
                for (i, slot) in ga.iter_mut().enumerate() {
                    *slot = (round * LEN + i) as i64;
                }
                gb.fill(round as i64);
            }
            dsm.barrier();
            let hot_sum: i64 = rows[0].view(0..LEN).iter().sum();
            let last_sum: i64 = rows[OBJS - 1].view(0..LEN).iter().sum();
            (hot_sum, last_sum)
        });
        let last_round = (OBJS - 1) as i64;
        let expect_hot: i64 = (0..LEN as i64).map(|i| last_round * LEN as i64 + i).sum();
        assert_eq!(results[0].0, expect_hot, "{policy:?}: hot write-back");
        assert_eq!(
            results[0].1,
            last_round * LEN as i64,
            "{policy:?}: streamed write-back"
        );
        assert!(
            report.total(|n| n.stats.swaps_out()) > 0,
            "{policy:?}: the churn must have swapped"
        );
    }
}

#[test]
fn exhausting_the_dmm_with_pinned_objects_fails_loudly() {
    // §5: if everything mapped is pinned, the system "can do nothing":
    // the next mapping must surface OutOfDmm — an error, not a hang or
    // an eviction of pinned data. Dropping a guard recovers.
    let opts = ClusterOptions::new(1, LotsConfig::small(TINY_DMM), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let rows: Vec<_> = (0..5).map(|_| dsm.alloc::<i64>(LEN)).collect();
        let mut guards = Vec::new();
        for row in rows.iter().take(4) {
            guards.push(row.view(0..LEN)); // 4 × 8 KB pins fill the lower half
        }
        let err = match rows[4].try_view(0..LEN) {
            Err(LotsError::OutOfDmm { .. }) => true,
            Err(other) => panic!("expected OutOfDmm with all objects pinned, got {other:?}"),
            Ok(_) => panic!("view succeeded although every mapped object is pinned"),
        };
        drop(guards);
        let recovered = rows[4].try_view(0..LEN).is_ok();
        err && recovered
    });
    assert!(results[0]);
}

#[test]
fn swapped_bytes_reports_compressed_store_resident_bytes() {
    // Constant-fill objects compress to a few dozen bytes each: the
    // report's swapped_bytes (actual store bytes) must sit far below
    // the logical swapped bytes, and the resident/swapped/materialized
    // invariant must hold at exit.
    // i32 rows: constant fills are single RLE runs (an i64 constant
    // alternates u32 words and would defeat the word-granular RLE).
    const ILEN: usize = 2 * LEN;
    let opts = ClusterOptions::new(1, LotsConfig::small(TINY_DMM), p4_fedora());
    let (accts, report) = run_cluster(opts, |dsm| {
        let rows: Vec<_> = (0..OBJS).map(|_| dsm.alloc::<i32>(ILEN)).collect();
        for (r, row) in rows.iter().enumerate() {
            row.view_mut(0..ILEN).fill(r as i32 + 1);
        }
        dsm.barrier();
        let mut sum = 0i64;
        for row in &rows {
            sum += row.view(0..ILEN).iter().map(|&v| v as i64).sum::<i64>();
        }
        assert_eq!(
            sum,
            (1..=OBJS as i64).sum::<i64>() * ILEN as i64,
            "data survived the churn"
        );
        dsm.swap_accounting()
    });
    let acct = accts[0];
    assert_eq!(
        acct.resident_logical + acct.swapped_logical,
        acct.materialized,
        "resident + swapped == allocated"
    );
    let node = &report.nodes[0];
    assert_eq!(node.swapped_logical_bytes, acct.swapped_logical);
    assert_eq!(node.resident_bytes, acct.resident_logical);
    assert!(node.swapped_logical_bytes > 0, "tiny arena must swap");
    assert!(
        node.swapped_bytes < node.swapped_logical_bytes / 10,
        "constant rows must compress hard: {} stored vs {} logical",
        node.swapped_bytes,
        node.swapped_logical_bytes
    );
}
