//! Failure injection and the system's documented limits: disk faults
//! surface as errors, capacity edges behave as §4.3/§5 describe, and
//! LOTS-x rejects working sets beyond the DMM area.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lots::core::{
    run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig, LotsError, SwapConfig,
};
use lots::disk::{BackingStore, DiskError, MemStore, SwapKey};
use lots::sim::machine::p4_fedora;
use lots::sim::{DiskModel, SimDuration};

/// A store that starts failing writes after `fail_after` puts.
struct FlakyStore {
    inner: MemStore,
    puts: AtomicU64,
    fail_after: u64,
}

impl FlakyStore {
    fn new(fail_after: u64) -> FlakyStore {
        FlakyStore {
            inner: MemStore::new(p4_fedora().disk),
            puts: AtomicU64::new(0),
            fail_after,
        }
    }
}

impl BackingStore for FlakyStore {
    fn model(&self) -> DiskModel {
        self.inner.model()
    }

    fn put(&self, key: SwapKey, data: &[u8]) -> Result<SimDuration, DiskError> {
        if self.puts.fetch_add(1, Ordering::Relaxed) >= self.fail_after {
            return Err(DiskError::Io("injected write failure".into()));
        }
        self.inner.put(key, data)
    }

    fn get(&self, key: SwapKey) -> Result<(Vec<u8>, SimDuration), DiskError> {
        self.inner.get(key)
    }

    fn remove(&self, key: SwapKey) -> Result<(), DiskError> {
        self.inner.remove(key)
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn capacity_bytes(&self) -> Option<u64> {
        self.inner.capacity_bytes()
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }
}

#[test]
fn injected_disk_failure_surfaces_as_error_not_corruption() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora())
        .with_stores(|_| Arc::new(FlakyStore::new(1)));
    let (results, _) = run_cluster(opts, |dsm| {
        // Three 12 KB objects in a 32 KB lower half: two fit, the third
        // mapping evicts (swap-out #1 succeeds), and remapping the
        // first needs swap-out #2 — which the store refuses.
        let a = dsm.alloc::<i64>(1536);
        let b = dsm.alloc::<i64>(1536);
        let c = dsm.alloc::<i64>(1536);
        a.write(0, 1);
        b.write(0, 2);
        c.write(0, 3); // swap-out #1 (a) succeeds
        let r = a.try_read(0); // needs swap-out #2 (b): injected failure
        match r {
            Err(LotsError::Disk(msg)) => msg.contains("injected"),
            other => panic!("expected injected disk failure, got {other:?}"),
        }
    });
    assert!(results[0]);
}

#[test]
fn backing_store_capacity_exhaustion_is_reported() {
    let disk = p4_fedora().disk;
    // Verbatim (uncompressed) images: this test sizes the store in
    // logical bytes; compression would shrink the zero-heavy images
    // far below the 20 KB limit.
    let lots = LotsConfig::small(64 * 1024).with_swap(SwapConfig::legacy());
    let opts = ClusterOptions::new(1, lots, p4_fedora())
        .with_stores(move |_| Arc::new(MemStore::with_capacity(disk, 20 * 1024)));
    let (results, _) = run_cluster(opts, |dsm| {
        // Each 12 KB object's swap image slightly exceeds 12 KB; the
        // second eviction exceeds the 20 KB store.
        let a = dsm.alloc::<i64>(1536);
        let b = dsm.alloc::<i64>(1536);
        let c = dsm.alloc::<i64>(1536);
        a.write(0, 1);
        b.write(0, 2);
        c.write(0, 3); // image of a fills most of the 20 KB store
        match a.try_read(0) {
            // image of b cannot fit alongside
            Err(LotsError::Disk(msg)) => msg.contains("full"),
            other => panic!("expected out-of-space, got {other:?}"),
        }
    });
    assert!(results[0], "capacity exhaustion must surface");
}

#[test]
fn statement_pinning_all_objects_hits_the_section5_condition() {
    // §5: "The system can do nothing if all the objects currently
    // mapped in the DMM area are accessed in the same program
    // statement" — the documented limitation, reported as an error.
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(1536); // 12 KB each
        let b = dsm.alloc::<i64>(1536);
        let c = dsm.alloc::<i64>(1536);
        let stmt = dsm.statement();
        let _ = a.read(0);
        let _ = b.read(0);
        let r = c.try_read(0);
        drop(stmt);
        let pinned_failure = matches!(r, Err(LotsError::OutOfDmm { .. }));
        // Outside the statement the same access succeeds via eviction.
        let recovered = c.try_read(0).is_ok();
        pinned_failure && recovered
    });
    assert!(results[0]);
}

#[test]
fn lots_x_cannot_outgrow_the_dmm_area() {
    // §1's motivation: without large-object support, "the application
    // is too large to fit in the system".
    let opts = ClusterOptions::new(1, LotsConfig::lots_x(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let _a = dsm.alloc::<i64>(1536);
        let _b = dsm.alloc::<i64>(1536);
        match dsm.try_alloc::<i64>(1536) {
            Err(LotsError::LotsXCapacity { .. }) => true,
            other => panic!("expected LotsXCapacity, got {other:?}"),
        }
    });
    assert!(results[0]);
}

#[test]
fn single_object_larger_than_dmm_rejected_with_clear_error() {
    // §4.3: "the single object size is only limited by the size of the
    // DMM area".
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| match dsm.try_alloc::<i64>(64 * 1024) {
        Err(LotsError::ObjectTooLarge { max, .. }) => max > 0,
        other => panic!("expected ObjectTooLarge, got {other:?}"),
    });
    assert!(results[0]);
}

#[test]
fn empty_alloc_is_a_recoverable_error_not_a_panic() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        matches!(dsm.try_alloc::<i32>(0), Err(LotsError::EmptyAlloc))
    });
    assert!(
        results[0],
        "try_alloc(0) must surface LotsError::EmptyAlloc"
    );

    use lots::jiajia::{run_jiajia_cluster, JiaError, JiaOptions};
    let (results, _) = run_jiajia_cluster(JiaOptions::new(1, 4 << 20, p4_fedora()), |dsm| {
        matches!(dsm.try_alloc::<i32>(0), Err(JiaError::EmptyAlloc))
    });
    assert!(
        results[0],
        "jia try_alloc(0) must surface JiaError::EmptyAlloc"
    );
}
