//! Figure 6 — the mixed coherence protocol.
//!
//! Lock synchronization uses a *homeless write-update* protocol: the
//! updates travel with the lock grant, so the next acquirer reads them
//! without contacting any home. Barrier synchronization uses
//! *migrating-home write-invalidate*: a single writer becomes the new
//! home with zero data transfer (the migration rides the barrier exit
//! message), everyone else invalidates and refetches on demand; an
//! object written by several nodes keeps its home, which gathers the
//! diffs, "avoiding the updates of an object to be scattered".

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;

fn opts(n: usize) -> ClusterOptions {
    ClusterOptions::new(n, LotsConfig::small(1 << 20), p4_fedora())
}

#[test]
fn lock_updates_arrive_with_the_grant_not_from_a_home() {
    let (results, report) = run_cluster(opts(2), |dsm| {
        let x = dsm.alloc::<i32>(4096); // 16 KB object
        let id = x.id();
        if dsm.me() == 0 {
            dsm.lock(1);
            x.write(7, 42);
            dsm.unlock(1);
            dsm.run_barrier();
            true
        } else {
            dsm.run_barrier();
            dsm.lock(1);
            // The grant has already patched our copy: it is locally
            // valid, no ObjReq to any home was needed.
            let valid_before_read = dsm.object_locally_valid(id);
            let v = x.read(7);
            dsm.unlock(1);
            v == 42 && valid_before_read
        }
    });
    assert!(results.iter().all(|&ok| ok));
    // Only the one-word update rode the grant: nothing remotely like
    // the 16 KB object crossed the network.
    let bytes: u64 = report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum();
    assert!(
        bytes < 1024,
        "write-update moved {bytes} B; a fetch would be ≥ 16 KB"
    );
}

#[test]
fn single_writer_migrates_home_with_zero_data_transfer() {
    let (results, report) = run_cluster(opts(4), |dsm| {
        let x = dsm.alloc::<f64>(2048); // 16 KB object
        let id = x.id();
        let original_home = dsm.object_home(id);
        if dsm.me() == 2 {
            x.fill(1.25);
        }
        dsm.barrier();
        (original_home, dsm.object_home(id))
    });
    for &(before, after) in &results {
        assert_eq!(before, 0, "round-robin initial home of object 0");
        assert_eq!(after, 2, "home migrated to the single writer");
    }
    // The 16 KB of written data never crossed the network: only barrier
    // control messages (a few hundred bytes) moved.
    let bytes: u64 = report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum();
    assert!(
        bytes < 2048,
        "migration moved {bytes} B; the object is 16 KB"
    );
}

#[test]
fn multi_writer_object_gathers_diffs_at_home_and_invalidates() {
    let (results, report) = run_cluster(opts(4), |dsm| {
        let x = dsm.alloc::<i32>(1024);
        let id = x.id();
        // All four nodes write disjoint quarters: multi-writer.
        let per = 1024 / dsm.n();
        for i in 0..per {
            x.write(dsm.me() * per + i, (dsm.me() * per + i) as i32);
        }
        dsm.barrier();
        // Home is unchanged (node 0); non-home copies were invalidated
        // ("free the memory storing the updates").
        let home = dsm.object_home(id);
        let invalidated = if dsm.me() == 0 {
            dsm.object_locally_valid(id)
        } else {
            !dsm.object_locally_valid(id)
        };
        // Reading refetches the merged object from the home.
        let sum: i64 = (0..1024).map(|i| x.read(i) as i64).sum();
        (home, invalidated, sum)
    });
    let expected: i64 = (0..1024).sum();
    for &(home, invalidated, sum) in &results {
        assert_eq!(home, 0, "multi-writer object keeps its home");
        assert!(invalidated, "non-home copies invalidated, home copy kept");
        assert_eq!(sum, expected, "home holds the merged updates");
    }
    // Diffs flowed to the home: real data-plane traffic this time.
    let frags: u64 = report
        .nodes
        .iter()
        .map(|n| n.traffic.fragments_sent())
        .sum();
    assert!(frags > 0, "multi-writer diffs must move");
}

#[test]
fn figure6_combined_timeline() {
    // The figure's storyline: x and y start homed at P1; P0 updates
    // them under a lock (update travels to P2 via the grant chain);
    // then P3 alone writes y before a barrier → y's home migrates to
    // P3 and the others invalidate.
    let (results, _) = run_cluster(opts(4), |dsm| {
        let x = dsm.alloc::<i32>(256); // home 0
        let y = dsm.alloc::<i32>(256); // home 1
        match dsm.me() {
            0 => {
                dsm.lock(5);
                x.write(0, 10);
                y.write(0, 20);
                dsm.unlock(5);
            }
            2 => {
                // P2 takes the lock next: sees both updates.
                dsm.lock(5);
                assert_eq!(x.read(0), 10);
                assert_eq!(y.read(0), 20);
                dsm.unlock(5);
            }
            _ => {}
        }
        dsm.barrier();
        if dsm.me() == 3 {
            y.write(1, 30); // sole writer of y this interval
        }
        dsm.barrier();
        (dsm.object_home(y.id()), y.read(0), y.read(1), x.read(0))
    });
    for &(y_home, y0, y1, x0) in &results {
        assert_eq!(y_home, 3, "y migrated to its sole writer P3");
        assert_eq!((y0, y1, x0), (20, 30, 10));
    }
}
