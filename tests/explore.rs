//! PR 7 acceptance: exhaustive schedule exploration.
//!
//! `SchedulerMode::Explore` + [`lots::analyze::explore_schedules`]
//! mechanically check the conservative-gate equivalence claim of the
//! parallel engine: every dispatch order the lookahead gate treats as
//! concurrent (epoch-batch permutations, and through them lock-grant
//! service orders) must produce a byte-identical outcome.
//!
//! * A 3-node lock+barrier model is enumerated to exhaustion — over a
//!   hundred distinct schedules, one fingerprint.
//! * The AB–BA deadlock kernel from `tests/determinism.rs` is found
//!   by exploration without any seed hint: every schedule ends in the
//!   engine's virtual-time deadlock panic, never a hang, and the
//!   explorer keeps enumerating through the panicking runs.

use std::sync::Once;

use lots::analyze::explore_schedules;
use lots::core::{
    run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig, ScheduleScript, SchedulerMode,
};
use lots::sim::machine::p4_fedora;

/// Expected-panic runs (deadlocks, poisoned peers) are part of the
/// search space: silence their default-hook stderr spew, but keep the
/// hook for anything unexpected.
fn quiet_expected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&'static str>()
                        .map(|s| s.to_string())
                });
            let expected = msg
                .as_deref()
                .is_some_and(|m| m.contains("virtual-time deadlock") || m.contains("poisoned"));
            if !expected {
                default(info);
            }
        }));
    });
}

/// Panic payload as a string (for outcome keys).
fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .unwrap_or_else(|| "opaque panic".to_string())
}

/// Every *virtual* observable of a run: results, clocks, per-node
/// stats and traffic, and the race report. The engine's own turn and
/// epoch counters are deliberately excluded — a permuted dispatch
/// order may legally cost an extra blocked turn; the equivalence
/// claim is about the simulation, not the engine's bookkeeping.
fn virtual_fingerprint<R: std::fmt::Debug>(
    results: &[R],
    report: &lots::core::ClusterReport,
) -> String {
    use std::fmt::Write as _;
    let mut s = format!("ok results={results:?} exec={}", report.exec_time.nanos());
    for nd in &report.nodes {
        let _ = write!(
            s,
            " [{} t={} chk={} tx={}/{} rx={}/{}]",
            nd.me,
            nd.time.nanos(),
            nd.stats.access_checks(),
            nd.traffic.msgs_sent(),
            nd.traffic.bytes_sent(),
            nd.traffic.msgs_received(),
            nd.traffic.bytes_received(),
        );
    }
    if let Some(races) = &report.races {
        let _ = write!(s, " races=[{races}]");
    }
    s
}

/// Run one scripted cluster execution of `app` with the race detector
/// on, folding a panic into the outcome string so deadlock schedules
/// are data, not aborts.
fn scripted_run<R: std::fmt::Debug + Send + 'static>(
    n: usize,
    budget: usize,
    script: ScheduleScript,
    app: fn(&lots::core::Dsm) -> R,
) -> String {
    let opts = ClusterOptions::new(n, LotsConfig::small(1 << 20), p4_fedora())
        .with_scheduler(SchedulerMode::Explore {
            max_schedules: budget,
        })
        .with_explore_script(script)
        .with_analyze(lots::analyze::AnalyzeConfig::races());
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_cluster(opts, app))) {
        Ok((results, report)) => virtual_fingerprint(&results, &report),
        Err(payload) => {
            let msg = payload_msg(payload);
            if msg.contains("virtual-time deadlock") {
                "deadlock:virtual-time deadlock".to_string()
            } else {
                format!("panic:{msg}")
            }
        }
    }
}

/// The 3-node lock+barrier model: enough concurrent structure for a
/// three-digit schedule space, small enough to exhaust in seconds.
fn lock_barrier_model(dsm: &lots::core::Dsm) -> i64 {
    let a = dsm.alloc::<i64>(8);
    a.write(dsm.me(), dsm.me() as i64 + 1);
    dsm.barrier();
    dsm.lock(1);
    let v = a.read(3);
    a.write(3, v + 1);
    dsm.unlock(1);
    a.read(3)
}

#[test]
fn exhaustive_exploration_finds_one_fingerprint() {
    quiet_expected_panics();
    const BUDGET: usize = 2000;
    let (outcomes, exploration) = explore_schedules(BUDGET, |script| {
        scripted_run(3, BUDGET, script, lock_barrier_model)
    });
    assert!(
        exploration.exhausted,
        "search space larger than the cap: saw {} schedules",
        exploration.schedules
    );
    assert!(
        exploration.schedules >= 100,
        "model too small to be interesting: {} schedules",
        exploration.schedules
    );
    let canonical = &outcomes[0];
    assert!(
        canonical.starts_with("ok"),
        "model must not fail: {canonical}"
    );
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(
            o, canonical,
            "schedule {i} of {} diverged — the conservative gate's \
             equivalence claim is violated",
            exploration.schedules
        );
    }
}

/// The AB–BA kernel of `tests/determinism.rs`: both nodes hold their
/// first lock across a data exchange before requesting the other's.
fn abba_kernel(dsm: &lots::core::Dsm) {
    let a = dsm.alloc::<i64>(64);
    let (first, second) = if dsm.me() == 0 { (1, 2) } else { (2, 1) };
    dsm.lock(first);
    a.write(dsm.me(), 1);
    let _ = a.read(1 - dsm.me());
    dsm.lock(second);
    dsm.unlock(second);
    dsm.unlock(first);
}

#[test]
fn exploration_finds_the_abba_deadlock() {
    quiet_expected_panics();
    let (outcomes, exploration) =
        explore_schedules(64, |script| scripted_run(2, 64, script, abba_kernel));
    assert!(exploration.schedules >= 1);
    let deadlocks = outcomes
        .iter()
        .filter(|o| o.starts_with("deadlock:"))
        .count();
    assert!(
        deadlocks > 0,
        "exploration must surface the AB-BA deadlock: {outcomes:?}"
    );
    // The cycle is schedule-independent (the data exchange forces the
    // lock overlap), so *every* enumerated schedule must hit it — and
    // none may hang.
    assert_eq!(
        deadlocks,
        outcomes.len(),
        "deadlock must not be schedule-lucky: {outcomes:?}"
    );
}

/// Scripted canonical order (empty prefix) equals the plain
/// deterministic engine: Explore mode is an instrumented superset,
/// not a different simulation.
#[test]
fn canonical_explore_schedule_matches_deterministic_engine() {
    quiet_expected_panics();
    let deterministic = || {
        let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
        let (results, report) = run_cluster(opts, lock_barrier_model);
        format!("ok results={results:?} exec={}", report.exec_time.nanos())
    };
    let explored = {
        let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora())
            .with_scheduler(SchedulerMode::Explore { max_schedules: 1 })
            .with_explore_script(ScheduleScript::default());
        let (results, report) = run_cluster(opts, lock_barrier_model);
        format!("ok results={results:?} exec={}", report.exec_time.nanos())
    };
    assert_eq!(deterministic(), explored);
}
