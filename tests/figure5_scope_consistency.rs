//! Figure 5 — the Scope Consistency semantics example.
//!
//! The paper's scenario: process P writes `a = 3` *outside* the
//! critical section and `b = 5` *inside* the section guarded by lock L.
//! When Q then acquires L, ScC guarantees it sees the updates made
//! inside the scope (`b == 5`) but says nothing about `a` — the figure
//! annotates the outcome "Result using ScC: b = 5, a != 3". A process R
//! that never takes the lock is not involved at all.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;

const L: u32 = 9;

#[test]
fn figure5_scope_consistency_example() {
    let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i32>(1);
        let b = dsm.alloc::<i32>(1);
        match dsm.me() {
            0 => {
                // P: unguarded write of a, guarded write of b.
                a.write(0, 3);
                dsm.lock(L);
                b.write(0, 5);
                dsm.unlock(L);
                dsm.run_barrier(); // event-only: no memory effects (§3.6)
                (a.read(0), b.read(0))
            }
            1 => {
                // Q: acquires the same lock after P released it.
                dsm.run_barrier();
                dsm.lock(L);
                let got = (a.read(0), b.read(0));
                dsm.unlock(L);
                got
            }
            _ => {
                // R: uninvolved — sees neither update.
                dsm.run_barrier();
                (a.read(0), b.read(0))
            }
        }
    });

    // P of course sees both of its own writes.
    assert_eq!(results[0], (3, 5));
    // Q: the scope delivered b = 5; the unguarded a is NOT propagated
    // ("a != 3" in the figure — here it still reads the initial 0).
    assert_eq!(results[1].1, 5, "updates inside the scope must arrive");
    assert_ne!(results[1].0, 3, "updates outside the scope must not");
    // R never synchronized through L: neither update is visible.
    assert_eq!(results[2], (0, 0));
}

#[test]
fn barrier_propagates_what_the_lock_did_not() {
    // Follow-up: a *barrier* (global scope) publishes everything,
    // including the unguarded a.
    let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i32>(1);
        if dsm.me() == 0 {
            a.write(0, 3);
        }
        dsm.barrier();
        a.read(0)
    });
    assert_eq!(results, vec![3, 3, 3]);
}

#[test]
fn same_lock_guarding_same_object_is_always_correct() {
    // "the program behavior will be correct as long as the same lock is
    //  used to guard the access of the same object" (§3.4).
    let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let x = dsm.alloc::<i64>(4);
        for _ in 0..25 {
            dsm.lock(L);
            let v = x.read(2);
            x.write(2, v + 1);
            dsm.unlock(L);
        }
        dsm.barrier();
        x.read(2)
    });
    assert_eq!(results, vec![75, 75, 75]);
}
