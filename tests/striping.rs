//! Striping property tests: randomized segment sizes × placement
//! policies × fault plans must never change what a program reads.
//!
//! * A barrier-synchronized block-write / full-read program produces
//!   checksums identical to a sequential model — and to the
//!   **unstriped oracle** — on LOTS, LOTS-x and JIAJIA, under seeded
//!   message-delay fault plans.
//! * Replays are bit-identical: same config twice, and the parallel
//!   engine against the sequential oracle, agree on checksums, virtual
//!   times and wire traffic.
//! * The race detector stays silent on the hot-object snapshot-read
//!   workload (readers overlapping a same-interval writer are reading
//!   pinned published versions, not racing).
//! * `Placement::Fixed(node)` outside the cluster is a deterministic
//!   alloc-time configuration error on all three systems.

use lots::apps::hotobj::{model_checksum, run_hot_object, HotParams};
use lots::core::{
    run_cluster, AnalyzeConfig, ClusterOptions, DsmApi, DsmSlice, LotsConfig, Placement,
    SchedulerMode, Striping,
};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;
use lots::sim::{FaultPlan, SimDuration};
use proptest::prelude::*;

const NODES: usize = 3;
const SEED: u64 = 0xC0FFEE;

/// Deterministic value of element `g` as written in interval `t`.
fn fill(t: usize, g: usize) -> u32 {
    let mut x = SEED ^ ((t as u64) << 32) ^ g as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as u32
}

/// One randomized case: object shape, striping knobs, fault plan.
#[derive(Debug, Clone)]
struct Case {
    per: usize,
    intervals: usize,
    seg_bytes: usize,
    placement: Placement,
    delay_ns: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        8usize..65,
        1usize..4,
        2usize..65,
        0usize..5,
        // 0 disables delay injection; anything else jitters messages.
        0u64..200_000,
    )
        .prop_map(|(per, intervals, seg_words, placement, delay_ns)| Case {
            per,
            intervals,
            // Word-rounded segments from 8 bytes up — tiny on purpose,
            // so even small objects stripe into many segments.
            seg_bytes: seg_words * 4,
            placement: match placement {
                0 => Placement::RoundRobin,
                1 => Placement::ConsistentHash,
                p => Placement::Fixed((p - 2) % NODES),
            },
            delay_ns,
        })
}

/// The sequential model: each interval rewrites the whole object (one
/// block per node), then every node reads it all back.
fn model(case: &Case) -> u64 {
    let elems = case.per * NODES;
    let mut sum = 0u64;
    for t in 0..case.intervals {
        let interval: u64 = (0..elems).map(|g| fill(t, g) as u64).sum();
        for _ in 0..NODES {
            sum = sum.wrapping_add(interval);
        }
    }
    sum
}

/// The SPMD program: per interval, node `me` rewrites its block
/// through one mutable view (spanning many segments when striped),
/// barriers, then bulk-reads the full object and accumulates.
fn kernel<D: DsmApi>(dsm: &D, case: &Case) -> u64 {
    let elems = case.per * NODES;
    let a = dsm.alloc::<u32>(elems);
    let (me, base) = (dsm.me(), dsm.me() * case.per);
    let mut sum = 0u64;
    for t in 0..case.intervals {
        {
            let mut v = a.view_mut(base..base + case.per);
            for (j, slot) in v.iter_mut().enumerate() {
                *slot = fill(t, base + j);
            }
        }
        dsm.barrier();
        sum = sum.wrapping_add(
            a.view(0..elems)
                .iter()
                .fold(0u64, |acc, &v| acc.wrapping_add(v as u64)),
        );
        // Writes never overlap a same-interval read of the same data,
        // so the unstriped oracle (which has no snapshot serving) sees
        // the same bytes as the striped runs.
        dsm.barrier();
        let _ = me;
    }
    sum
}

fn lots_case(case: &Case, mut cfg: LotsConfig, striped: bool) -> u64 {
    if striped {
        cfg.striping = Some(Striping {
            segment_bytes: case.seg_bytes,
            placement: case.placement,
        });
    }
    let opts = ClusterOptions::new(NODES, cfg, p4_fedora())
        .with_faults(FaultPlan::delays(case.delay_ns, SimDuration(case.delay_ns)));
    let case = case.clone();
    let (results, _) = run_cluster(opts, move |dsm| kernel(dsm, &case));
    results.iter().fold(0u64, |a, &s| a.wrapping_add(s))
}

fn jiajia_case(case: &Case) -> u64 {
    let opts = JiaOptions::new(NODES, 8 << 20, p4_fedora())
        .with_faults(FaultPlan::delays(case.delay_ns, SimDuration(case.delay_ns)));
    let case = case.clone();
    let (results, _) = run_jiajia_cluster(opts, move |dsm| kernel(dsm, &case));
    results.iter().fold(0u64, |a, &s| a.wrapping_add(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random segment sizes × placements × fault plans: striped LOTS
    /// and LOTS-x agree with the unstriped oracle, the sequential
    /// model, and page-based JIAJIA.
    #[test]
    fn striped_matches_unstriped_oracle_everywhere(case in case_strategy()) {
        let expected = model(&case);
        let oracle = lots_case(&case, LotsConfig::small(4 << 20), false);
        prop_assert_eq!(oracle, expected, "unstriped oracle vs model");
        let striped = lots_case(&case, LotsConfig::small(4 << 20), true);
        prop_assert_eq!(striped, expected, "striped LOTS vs model");
        let lotsx = lots_case(&case, LotsConfig::lots_x(4 << 20), true);
        prop_assert_eq!(lotsx, expected, "striped LOTS-x vs model");
        prop_assert_eq!(jiajia_case(&case), expected, "JIAJIA vs model");
    }

    /// Striped runs replay bit for bit: checksums, virtual times and
    /// wire traffic identical across repeats.
    #[test]
    fn striped_replay_is_bit_identical(case in case_strategy()) {
        let run = || {
            let mut cfg = LotsConfig::small(4 << 20);
            cfg.striping = Some(Striping {
                segment_bytes: case.seg_bytes,
                placement: case.placement,
            });
            let opts = ClusterOptions::new(NODES, cfg, p4_fedora())
                .with_faults(FaultPlan::delays(case.delay_ns, SimDuration(case.delay_ns)));
            let case = case.clone();
            let (results, report) = run_cluster(opts, move |dsm| kernel(dsm, &case));
            let traffic: u64 = report.nodes.iter().map(|n| n.traffic.bytes_sent()).sum();
            (results, report.exec_time, traffic)
        };
        prop_assert_eq!(run(), run());
    }
}

/// A CI-sized hot object: 8 nodes, 1 MB in 16 KB segments, three
/// rounds of rotating writers overlapping every node's reads.
fn tiny_hot() -> (HotParams, LotsConfig) {
    let params = HotParams {
        elems: 128 << 10,
        rounds: 3,
        single_home: false,
    };
    let mut cfg = LotsConfig::small(4 << 20);
    cfg.striping = Some(Striping::segments_of(16 << 10));
    (params, cfg)
}

/// The parallel engine reproduces the sequential oracle byte for byte
/// on the hot-object snapshot workload (readers racing ahead of and
/// behind the in-flight writer on the host).
#[test]
fn hot_object_parallel_matches_sequential_oracle() {
    let (params, cfg) = tiny_hot();
    let run = |mode: SchedulerMode| {
        let opts = ClusterOptions::new(8, cfg.clone(), p4_fedora()).with_scheduler(mode);
        let (results, report) = run_cluster(opts, move |dsm| run_hot_object(dsm, &params));
        let checksums: Vec<u64> = results.iter().map(|r| r.checksum).collect();
        (checksums, report.exec_time)
    };
    let det = run(SchedulerMode::Deterministic);
    let combined = det.0.iter().fold(0u64, |a, &c| a.wrapping_add(c));
    assert_eq!(combined, model_checksum(&tiny_hot().0, 0, 8));
    assert_eq!(det, run(SchedulerMode::Parallel { workers: 4 }));
}

/// Snapshot reads are not races: the ScC vector-clock detector stays
/// silent on the hot-object workload even though every round a reader
/// overlaps the in-flight writer — it reads the pinned published
/// version, not the writer's arena.
#[test]
fn race_detector_silent_on_snapshot_reads() {
    let (params, cfg) = tiny_hot();
    let opts = ClusterOptions::new(8, cfg, p4_fedora()).with_analyze(AnalyzeConfig::races());
    let (results, report) = run_cluster(opts, move |dsm| run_hot_object(dsm, &params));
    let combined = results.iter().fold(0u64, |a, r| a.wrapping_add(r.checksum));
    assert_eq!(combined, model_checksum(&tiny_hot().0, 0, 8));
    let races = report.races.expect("analysis was enabled");
    assert!(
        races.is_empty(),
        "snapshot-pinned reads flagged as races: {races:?}"
    );
}

/// `Placement::Fixed` outside the cluster fails deterministically at
/// alloc time — collective, named and striping-default paths — on all
/// three systems.
#[test]
fn fixed_placement_out_of_bounds_is_an_alloc_time_error() {
    for cfg in [LotsConfig::small(1 << 20), LotsConfig::lots_x(1 << 20)] {
        let opts = ClusterOptions::new(2, cfg, p4_fedora());
        let (results, _) = run_cluster(opts, |dsm| {
            let collective = dsm.try_alloc_placed::<u32>(16, Placement::Fixed(9));
            let named = if dsm.me() == 0 {
                dsm.try_alloc_named_placed::<u32>("oob", 16, Placement::Fixed(9))
            } else {
                Ok(())
            };
            dsm.barrier();
            (
                format!("{}", collective.expect_err("Fixed(9) on 2 nodes must fail")),
                dsm.me() != 0 || named.is_err(),
            )
        });
        for (msg, named_failed) in results {
            assert!(
                msg.contains("Fixed(9)"),
                "error must name the placement: {msg}"
            );
            assert!(named_failed, "named alloc must reject Fixed(9) when staged");
        }
    }
    let opts = JiaOptions::new(2, 1 << 20, p4_fedora());
    let (results, _) = run_jiajia_cluster(opts, |dsm| {
        format!(
            "{}",
            dsm.try_alloc_placed::<u32>(16, Placement::Fixed(9))
                .expect_err("Fixed(9) on 2 nodes must fail")
        )
    });
    for msg in results {
        assert!(
            msg.contains("Fixed(9)"),
            "error must name the placement: {msg}"
        );
    }
}

/// A striping config whose *default* placement is out of bounds fails
/// every allocation under it, not just explicit per-alloc overrides.
#[test]
fn striping_default_fixed_out_of_bounds_is_an_error() {
    let mut cfg = LotsConfig::small(1 << 20);
    cfg.striping = Some(Striping {
        segment_bytes: 64,
        placement: Placement::Fixed(7),
    });
    let opts = ClusterOptions::new(2, cfg, p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        format!(
            "{}",
            dsm.try_alloc::<u32>(256)
                .expect_err("striping default Fixed(7) on 2 nodes must fail")
        )
    });
    for msg in results {
        assert!(
            msg.contains("Fixed(7)"),
            "error must name the placement: {msg}"
        );
    }
}
