//! Property tests for the object-lifecycle API: random
//! alloc/free/named-lookup churn must be byte-identical to a plain
//! sequential model on LOTS, LOTS-x and JIAJIA; faulted runs must
//! compute the same values and replay bit-for-bit; use-after-free
//! through any path (element op, view, lookup) must panic with the
//! fence message; and zero-size chunked allocations must agree with
//! `try_alloc(0)` on every system.

use std::sync::Arc;

use lots::apps::churn::placement_for;
use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, FaultPlan, LotsConfig, LotsError};
use lots::jiajia::{run_jiajia_cluster, JiaError, JiaOptions};
use lots::sim::machine::p4_fedora;
use lots::sim::SimDuration;
use proptest::prelude::*;

const NODES: usize = 3;

/// One synchronization interval of the random churn program. Raw
/// draws; the interpreter normalizes them into bounds.
#[derive(Debug, Clone)]
struct Phase {
    /// Element counts of this phase's allocations (placement cycles).
    allocs: Vec<usize>,
    /// Writes `(new-object draw, element draw, value)` — applied by
    /// the written object's single owner node, and only to objects
    /// allocated *this* phase: under Scope Consistency a read of data
    /// written in the same interval without a lock is a race, so the
    /// post-barrier sweep must only see sealed generations.
    writes: Vec<(usize, usize, u32)>,
    /// Frees (live-slot draws) — each applied by the object's owner
    /// alone, exercising non-collective reclamation.
    frees: Vec<usize>,
}

type Script = Vec<Phase>;

fn tag(p: usize) -> String {
    format!("t{p}")
}

/// Run the script on one node of any DSM; returns the checksum every
/// node must agree on.
fn run_script<D: DsmApi>(dsm: &D, script: &Script) -> u64 {
    let (n, me) = (dsm.n(), dsm.me());
    let mut live: Vec<(usize, D::Slice<'_, u32>, usize)> = Vec::new();
    let mut uid = 0usize;
    let mut checksum = 0u64;
    for (p, phase) in script.iter().enumerate() {
        for &elems in &phase.allocs {
            let s = dsm.alloc_placed::<u32>(elems, placement_for(uid, n));
            live.push((uid, s, elems));
            uid += 1;
        }
        // One node stages a named object per phase; committed below.
        if me == p % n {
            dsm.alloc_named::<u32>(&tag(p), 8);
        }
        for &(wslot, welem, val) in &phase.writes {
            if phase.allocs.is_empty() {
                break;
            }
            let fresh = live.len() - phase.allocs.len();
            let (u, s, elems) = live[fresh + wslot % phase.allocs.len()];
            if u % n == me {
                s.write(welem % elems, val);
            }
        }
        // Frees come after the writes (a write through a tombstone is
        // a use-after-free by design). Deduped positions, removed from
        // the back so indices stay valid.
        let mut positions: Vec<usize> = phase
            .frees
            .iter()
            .filter(|_| !live.is_empty())
            .map(|&f| f % live.len())
            .collect();
        positions.sort_unstable();
        positions.dedup();
        for pos in positions.into_iter().rev() {
            let (u, s, _elems) = live.remove(pos);
            if u % n == me {
                dsm.free(s);
            }
        }
        dsm.barrier();
        // The named object committed at this barrier: its owner writes
        // it now; every node reads (and one frees) last phase's.
        if me == p % n {
            dsm.lookup::<u32>(&tag(p)).write(0, 1000 + p as u32);
        }
        if p >= 1 {
            let t = dsm.lookup::<u32>(&tag(p - 1));
            checksum = checksum.wrapping_add(t.read(0) as u64);
            if me == p % n {
                dsm.free(t);
            }
        }
        // Full sweep of the live set through view guards.
        for &(_u, s, elems) in &live {
            let sum: u64 = s.view(0..elems).iter().map(|&v| v as u64).sum();
            checksum = checksum.wrapping_add(sum);
        }
    }
    dsm.barrier();
    checksum
}

/// The sequential model: same script, plain vectors.
fn run_model(script: &Script, n: usize) -> u64 {
    let mut live: Vec<(usize, Vec<u32>)> = Vec::new();
    let mut uid = 0usize;
    let mut checksum = 0u64;
    for (p, phase) in script.iter().enumerate() {
        for &elems in &phase.allocs {
            live.push((uid, vec![0u32; elems]));
            uid += 1;
        }
        for &(wslot, welem, val) in &phase.writes {
            if phase.allocs.is_empty() {
                break;
            }
            let slot = live.len() - phase.allocs.len() + wslot % phase.allocs.len();
            let elems = live[slot].1.len();
            live[slot].1[welem % elems] = val;
        }
        let mut positions: Vec<usize> = phase
            .frees
            .iter()
            .filter(|_| !live.is_empty())
            .map(|&f| f % live.len())
            .collect();
        positions.sort_unstable();
        positions.dedup();
        for pos in positions.into_iter().rev() {
            live.remove(pos);
        }
        if p >= 1 {
            checksum = checksum.wrapping_add(1000 + (p as u64 - 1));
        }
        for (_u, data) in &live {
            let sum: u64 = data.iter().map(|&v| v as u64).sum();
            checksum = checksum.wrapping_add(sum);
        }
        let _ = n;
    }
    checksum
}

fn fingerprint_lots(results: &[u64], report: &lots::core::ClusterReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (r, nd) in results.iter().zip(&report.nodes) {
        let _ = write!(
            out,
            "{}:{}:{}:{}:{}:{}:{}:{};",
            r,
            nd.time.nanos(),
            nd.stats.access_checks(),
            nd.stats.swaps_out(),
            nd.stats.objects_freed(),
            nd.traffic.bytes_sent(),
            nd.object_slots,
            nd.frag.external_frag_permille,
        );
    }
    out
}

fn lots_run(script: &Script, cfg: LotsConfig, faults: FaultPlan) -> (Vec<u64>, String) {
    let script = Arc::new(script.clone());
    let opts = ClusterOptions::new(NODES, cfg, p4_fedora()).with_faults(faults);
    let (results, report) = run_cluster(opts, move |dsm| run_script(dsm, &script));
    let fp = fingerprint_lots(&results, &report);
    (results, fp)
}

fn jia_run(script: &Script) -> Vec<u64> {
    let script = Arc::new(script.clone());
    let opts = JiaOptions::new(NODES, 1 << 20, p4_fedora());
    let (results, _) = run_jiajia_cluster(opts, move |dsm| run_script(dsm, &script));
    results
}

fn jitter() -> FaultPlan {
    FaultPlan {
        seed: 42,
        max_msg_delay: SimDuration::from_micros(800),
        cpu_slowdown: vec![(1, 1.7)],
        ..FaultPlan::none()
    }
}

fn script_strategy() -> impl Strategy<Value = Script> {
    proptest::collection::vec(
        (
            proptest::collection::vec(1usize..2048, 0..4),
            proptest::collection::vec((any::<usize>(), any::<usize>(), any::<u32>()), 0..6),
            proptest::collection::vec(any::<usize>(), 0..3),
        ),
        2..5,
    )
    .prop_map(|phases| {
        phases
            .into_iter()
            .map(|(allocs, writes, frees)| Phase {
                allocs,
                writes,
                frees,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random churn: every node of every system reports the model's
    /// checksum; a jittered LOTS run computes the same values and
    /// replays bit-for-bit (report fingerprint included).
    #[test]
    fn churn_matches_model_and_replays_under_faults(script in script_strategy()) {
        let expect = run_model(&script, NODES);
        // LOTS under swap pressure (64 KB arena), LOTS-x roomy.
        let (lots, _) = lots_run(&script, LotsConfig::small(64 * 1024), FaultPlan::none());
        for r in &lots {
            prop_assert_eq!(*r, expect, "LOTS vs model");
        }
        let (lotsx, _) = lots_run(&script, LotsConfig::lots_x(1 << 20), FaultPlan::none());
        for r in &lotsx {
            prop_assert_eq!(*r, expect, "LOTS-x vs model");
        }
        for r in jia_run(&script) {
            prop_assert_eq!(r, expect, "JIAJIA vs model");
        }
        // Fault jitter changes times, never values — and replays
        // byte-identically.
        let (f1, fp1) = lots_run(&script, LotsConfig::small(64 * 1024), jitter());
        for r in &f1 {
            prop_assert_eq!(*r, expect, "faulted LOTS vs model");
        }
        let (_, fp2) = lots_run(&script, LotsConfig::small(64 * 1024), jitter());
        prop_assert_eq!(fp1, fp2, "faulted run must replay bit-for-bit");
    }
}

// ---------------------------------------------------------------------
// Use-after-free fences: every access path panics with the fence
// message between `free` and any later use.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "use after free")]
fn lots_element_op_after_free_panics() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        dsm.free(a);
        a.read(0)
    });
}

#[test]
#[should_panic(expected = "use after free")]
fn lots_view_after_free_panics() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        let b = a; // a second handle to the same object
        dsm.free(a);
        let sum = b.view(0..4).iter().sum::<u32>();
        sum
    });
}

#[test]
#[should_panic(expected = "use after free")]
fn lots_lookup_after_free_panics() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        dsm.alloc_named::<u32>("grid", 16);
        dsm.barrier();
        let h = dsm.lookup::<u32>("grid");
        dsm.free(h);
        // Tombstoned this interval: the directory entry is fenced.
        let _ = dsm.lookup::<u32>("grid");
    });
}

#[test]
#[should_panic(expected = "use after free")]
fn lots_write_after_free_panics_even_past_the_reclaiming_barrier() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        dsm.free(a);
        dsm.barrier(); // reclaimed: the slot is Free, not reused yet
        a.write(3, 9);
    });
}

#[test]
#[should_panic(expected = "use after free")]
fn jiajia_access_after_free_panics() {
    let opts = JiaOptions::new(1, 64 * 4096, p4_fedora());
    let _ = run_jiajia_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        dsm.free(a);
        a.read(0)
    });
}

#[test]
#[should_panic(expected = "drop it first")]
fn lots_free_under_a_live_view_is_fenced() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        let v = a.view(0..8);
        dsm.free(a);
        drop(v);
    });
}

#[test]
fn double_free_and_subslice_free_are_errors() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(16);
        assert!(matches!(
            dsm.try_free(a.offset(4)),
            Err(LotsError::BadFree { .. })
        ));
        assert!(matches!(
            dsm.try_free(a.prefix(8)),
            Err(LotsError::BadFree { .. })
        ));
        dsm.free(a);
        assert!(matches!(
            dsm.try_free(a),
            Err(LotsError::UseAfterFree { .. })
        ));
        true
    });
    assert_eq!(results, vec![true]);
    let opts = JiaOptions::new(1, 64 * 4096, p4_fedora());
    let (results, _) = run_jiajia_cluster(opts, |dsm| {
        let a = dsm.alloc::<u32>(2048);
        assert!(matches!(
            dsm.try_free(a.prefix(8)),
            Err(JiaError::BadFree { .. })
        ));
        dsm.free(a);
        assert!(matches!(
            dsm.try_free(a),
            Err(JiaError::UseAfterFree { .. })
        ));
        true
    });
    assert_eq!(results, vec![true]);
}

// ---------------------------------------------------------------------
// Zero-size chunked allocations agree with try_alloc(0).
// ---------------------------------------------------------------------

#[test]
fn zero_size_alloc_chunks_agrees_with_empty_alloc_on_lots() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        assert!(matches!(
            dsm.try_alloc::<u32>(0),
            Err(LotsError::EmptyAlloc)
        ));
        assert!(matches!(
            dsm.try_alloc_chunks::<u32>(4, 0),
            Err(LotsError::EmptyAlloc)
        ));
        assert!(matches!(
            dsm.try_alloc_chunks::<u32>(0, 4),
            Err(LotsError::EmptyAlloc)
        ));
        // Non-degenerate chunked allocs still work.
        dsm.try_alloc_chunks::<u32>(3, 8).unwrap().len()
    });
    assert_eq!(results, vec![3]);
}

#[test]
fn zero_size_alloc_chunks_agrees_with_empty_alloc_on_jiajia() {
    let opts = JiaOptions::new(1, 64 * 4096, p4_fedora());
    let (results, _) = run_jiajia_cluster(opts, |dsm| {
        assert!(matches!(dsm.try_alloc::<u32>(0), Err(JiaError::EmptyAlloc)));
        assert!(matches!(
            dsm.try_alloc_chunks::<u32>(4, 0),
            Err(JiaError::EmptyAlloc)
        ));
        assert!(matches!(
            dsm.try_alloc_chunks::<u32>(0, 4),
            Err(JiaError::EmptyAlloc)
        ));
        dsm.try_alloc_chunks::<u32>(3, 8).unwrap().len()
    });
    assert_eq!(results, vec![3]);
}

#[test]
#[should_panic(expected = "cannot allocate an empty")]
fn panicking_alloc_chunks_names_the_empty_alloc() {
    let opts = ClusterOptions::new(1, LotsConfig::small(64 * 1024), p4_fedora());
    let _ = run_cluster(opts, |dsm| {
        let _ = dsm.alloc_chunks::<u32>(4, 0);
    });
}

// ---------------------------------------------------------------------
// Swap accounting across frees: deferred reclamation is visible, then
// the backing store's capacity returns at the barrier.
// ---------------------------------------------------------------------

#[test]
fn freed_swap_images_leave_the_store_and_accounting_balances() {
    let opts = ClusterOptions::new(1, LotsConfig::small(32 * 1024), p4_fedora());
    let (results, report) = run_cluster(opts, |dsm| {
        let objs: Vec<_> = (0..3).map(|_| dsm.alloc::<u32>(9 * 1024 / 4)).collect();
        for (k, o) in objs.iter().enumerate() {
            o.write(0, k as u32 + 1); // dirties; mapping the next evicts
        }
        assert!(
            dsm.swapped_bytes() > 0,
            "three 9 KB objects through a 32 KB arena must swap"
        );
        for o in &objs {
            dsm.free(*o);
        }
        // Tombstoned, not yet reclaimed: the images are still held.
        assert!(dsm.swapped_bytes() > 0, "reclamation is barrier-deferred");
        dsm.barrier();
        // Reclaimed: the store's capacity returns.
        assert_eq!(dsm.swapped_bytes(), 0, "freed images leave the store");
        let acct = dsm.swap_accounting();
        assert_eq!(acct.freed_bytes, 3 * 9 * 1024);
        assert_eq!(
            acct.resident_logical + acct.swapped_logical + acct.dematerialized_cum,
            acct.materialized_cum,
            "resident + swapped + freed/invalidated == cumulative materialized"
        );
        assert_eq!(acct.materialized, 0, "nothing lives after the frees");
        true
    });
    assert_eq!(results, vec![true]);
    assert_eq!(report.nodes[0].swapped_bytes, 0);
    assert_eq!(report.nodes[0].stats.objects_freed(), 3);
}

/// Named objects remove the SPMD lockstep-allocation assumption: a
/// phase that allocates on one node only, with every node (allocator
/// included) attaching by name one barrier later.
#[test]
fn named_objects_cross_node_attach_and_placement() {
    let opts = ClusterOptions::new(4, LotsConfig::small(256 * 1024), p4_fedora());
    let (results, _) = run_cluster(opts, |dsm| {
        if dsm.me() == 2 {
            // Node 2 alone allocates — no other node calls alloc here.
            dsm.alloc_named_placed::<u32>("grid", 64, lots::core::Placement::Fixed(1));
        }
        dsm.barrier();
        let g = dsm.lookup::<u32>("grid");
        assert_eq!(dsm.object_home(g.id()), 1, "Fixed(1) placement honoured");
        if dsm.me() == 2 {
            g.write_from(0, &[7; 64]);
        }
        dsm.barrier();
        let sum: u32 = g.view(0..64).iter().sum();
        // Type mismatch is a directory-checked error.
        assert!(matches!(
            dsm.try_lookup::<u64>("grid"),
            Err(LotsError::NameTypeMismatch { .. })
        ));
        assert!(matches!(
            dsm.try_lookup::<u32>("absent"),
            Err(LotsError::NameNotFound { .. })
        ));
        sum
    });
    assert_eq!(results, vec![7 * 64; 4]);
}
