//! Property tests for the view-guard surface: random programs mixing
//! interleaved `view`/`view_mut` scopes, pointer arithmetic and bulk
//! ops must agree **byte-for-byte** with the element-wise API and with
//! a plain in-memory model — on LOTS, LOTS-x and JIAJIA, including
//! under LOTS swap pressure.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::jiajia::{run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;
use proptest::prelude::*;

const LEN: usize = 1024;

/// One step of a random single-node program. Fields are raw draws;
/// the interpreter normalizes them into bounds.
type RawOp = (usize, usize, usize, i32);

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `a[i] = v` — element write vs one-element `view_mut`.
    Write { i: usize, v: i32 },
    /// Read `a[i]` into the checksum.
    Read { i: usize },
    /// Bulk write of `[lo, hi)` — `write_from` vs `view_mut`.
    BulkWrite { lo: usize, hi: usize, v: i32 },
    /// Bulk read of `[lo, hi)` into the checksum.
    BulkRead { lo: usize, hi: usize },
    /// `a[i] ^= v` — `update` vs read-modify-write through a guard.
    Update { i: usize, v: i32 },
    /// `dst[k] += src[k]` over two disjoint ranges — element loop vs
    /// two *interleaved* live guards (a read view and a mutable view).
    MirrorAdd { lo: usize, span: usize },
    /// Write through a shifted+truncated handle (`offset`/`prefix`).
    PtrWrite { delta: usize, v: i32 },
}

fn decode((kind, x, y, v): RawOp) -> Op {
    let i = x % LEN;
    let (lo, hi) = {
        let (a, b) = (x % LEN, y % LEN);
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    };
    match kind % 7 {
        0 => Op::Write { i, v },
        1 => Op::Read { i },
        2 => Op::BulkWrite { lo, hi, v },
        3 => Op::BulkRead { lo, hi },
        4 => Op::Update { i, v },
        5 => Op::MirrorAdd {
            lo: x % (LEN / 2 - 64),
            span: 1 + y % 64,
        },
        _ => Op::PtrWrite { delta: i, v },
    }
}

fn bulk_vals(lo: usize, hi: usize, v: i32) -> Vec<i32> {
    (0..hi - lo).map(|k| v.wrapping_add(k as i32)).collect()
}

/// The reference interpreter over a plain vector.
fn note(cksum: &mut u64, v: i32) {
    *cksum = cksum.wrapping_mul(31).wrapping_add(v as u64);
}

fn run_model(ops: &[Op]) -> (Vec<i32>, u64) {
    let mut a = vec![0i32; LEN];
    let mut cksum = 0u64;
    for &op in ops {
        match op {
            Op::Write { i, v } => a[i] = v,
            Op::Read { i } => note(&mut cksum, a[i]),
            Op::BulkWrite { lo, hi, v } => a[lo..hi].copy_from_slice(&bulk_vals(lo, hi, v)),
            Op::BulkRead { lo, hi } => (lo..hi).for_each(|k| note(&mut cksum, a[k])),
            Op::Update { i, v } => a[i] ^= v,
            Op::MirrorAdd { lo, span } => {
                let dst = lo + LEN / 2;
                for k in 0..span {
                    a[dst + k] = a[dst + k].wrapping_add(a[lo + k]);
                }
            }
            Op::PtrWrite { delta, v } => a[delta] = v,
        }
    }
    (a, cksum)
}

/// The element-wise interpreter (per-element checked accessors).
fn run_elementwise<S: DsmSlice<Elem = i32>>(a: &S, ops: &[Op]) -> (Vec<i32>, u64) {
    let mut cksum = 0u64;
    for &op in ops {
        match op {
            Op::Write { i, v } => a.write(i, v),
            Op::Read { i } => note(&mut cksum, a.read(i)),
            Op::BulkWrite { lo, hi, v } => a.write_from(lo, &bulk_vals(lo, hi, v)),
            Op::BulkRead { lo, hi } => a
                .read_vec(lo, hi - lo)
                .into_iter()
                .for_each(|v| note(&mut cksum, v)),
            Op::Update { i, v } => a.update(i, |x| x ^ v),
            Op::MirrorAdd { lo, span } => {
                let dst = lo + LEN / 2;
                for k in 0..span {
                    let s = a.read(lo + k);
                    a.update(dst + k, |x| x.wrapping_add(s));
                }
            }
            Op::PtrWrite { delta, v } => a.offset(delta).prefix(1).write(0, v),
        }
    }
    (a.read_vec(0, LEN), cksum)
}

/// The guard-based interpreter (views, interleaved scopes, pointer
/// arithmetic on the handles the guards open from).
fn run_with_guards<S: DsmSlice<Elem = i32>>(a: &S, ops: &[Op]) -> (Vec<i32>, u64) {
    let mut cksum = 0u64;
    for &op in ops {
        match op {
            Op::Write { i, v } => a.view_mut(i..i + 1)[0] = v,
            Op::Read { i } => note(&mut cksum, a.view(i..i + 1)[0]),
            Op::BulkWrite { lo, hi, v } => {
                if lo < hi {
                    a.view_mut(lo..hi).copy_from_slice(&bulk_vals(lo, hi, v));
                }
            }
            Op::BulkRead { lo, hi } => a.view(lo..hi).iter().for_each(|&v| note(&mut cksum, v)),
            Op::Update { i, v } => {
                let mut g = a.view_mut(i..i + 1);
                g[0] ^= v;
            }
            Op::MirrorAdd { lo, span } => {
                // Two live guards at once: a read view of the source
                // range interleaved with a mutable view of a disjoint
                // destination range.
                let src = a.view(lo..lo + span);
                let upper = a.offset(LEN / 2);
                let mut dst = upper.view_mut(lo..lo + span);
                for k in 0..span {
                    dst[k] = dst[k].wrapping_add(src[k]);
                }
            }
            Op::PtrWrite { delta, v } => a.offset(delta).prefix(1).view_mut(0..1)[0] = v,
        }
    }
    let final_state = a.view(0..LEN).to_vec();
    (final_state, cksum)
}

/// Run both interpreters on one node of the given LOTS flavour and
/// compare against the model.
fn check_lots(ops: Vec<Op>, cfg: LotsConfig) {
    let (expect_state, expect_cksum) = run_model(&ops);
    let opts = ClusterOptions::new(1, cfg, p4_fedora());
    let ops = std::sync::Arc::new(ops);
    let (mut results, _) = run_cluster(opts, move |dsm| {
        let elem = dsm.alloc::<i32>(LEN);
        let guarded = dsm.alloc::<i32>(LEN);
        (
            run_elementwise(&elem, &ops),
            run_with_guards(&guarded, &ops),
        )
    });
    let (elem, guarded) = results.remove(0);
    assert_eq!(elem.0, expect_state, "element-wise state diverged");
    assert_eq!(elem.1, expect_cksum, "element-wise reads diverged");
    assert_eq!(guarded.0, expect_state, "guard state diverged");
    assert_eq!(guarded.1, expect_cksum, "guard reads diverged");
}

fn check_jia(ops: Vec<Op>) {
    let (expect_state, expect_cksum) = run_model(&ops);
    let opts = JiaOptions::new(1, 4 << 20, p4_fedora());
    let ops = std::sync::Arc::new(ops);
    let (mut results, _) = run_jiajia_cluster(opts, move |dsm| {
        let elem = dsm.alloc::<i32>(LEN);
        let guarded = dsm.alloc::<i32>(LEN);
        (
            run_elementwise(&elem, &ops),
            run_with_guards(&guarded, &ops),
        )
    });
    let (elem, guarded) = results.remove(0);
    assert_eq!(elem.0, expect_state, "element-wise state diverged");
    assert_eq!(elem.1, expect_cksum, "element-wise reads diverged");
    assert_eq!(guarded.0, expect_state, "guard state diverged");
    assert_eq!(guarded.1, expect_cksum, "guard reads diverged");
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0usize..7, 0usize..LEN, 0usize..LEN, any::<i32>()), 1..40)
        .prop_map(|raw| raw.into_iter().map(decode).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn guards_agree_with_elementwise_on_lots(ops in ops_strategy()) {
        check_lots(ops, LotsConfig::small(1 << 20));
    }

    #[test]
    fn guards_agree_with_elementwise_on_lots_under_swap_pressure(ops in ops_strategy()) {
        // A 12 KB DMM holds only one of the two 4 KB arrays at a time,
        // so guards constantly pin/swap through the backing store.
        check_lots(ops, LotsConfig::small(12 * 1024));
    }

    #[test]
    fn guards_agree_with_elementwise_on_lots_x(ops in ops_strategy()) {
        check_lots(ops, LotsConfig::lots_x(1 << 20));
    }

    #[test]
    fn guards_agree_with_elementwise_on_jiajia(ops in ops_strategy()) {
        check_jia(ops);
    }
}
