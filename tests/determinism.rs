//! PR 3/PR 6 acceptance: the virtual-time engine makes whole cluster
//! runs bit-reproducible — and the conservative parallel engine is
//! byte-identical to the sequential oracle.
//!
//! * Same seed ⇒ byte-identical reports (clocks, stats, traffic) on
//!   all three systems (LOTS, LOTS-x, JIAJIA), for SOR and RX.
//! * `Parallel { workers }` reproduces the `Deterministic` oracle's
//!   fingerprint exactly on SOR, RX and object churn — including the
//!   deterministic scheduler counters (turns/wakes/epochs).
//! * Seeds actually steer the seeded workloads' data end to end.
//! * Random `FaultPlan` message delays, CPU slowdowns and barrier
//!   panics perturb every engine *identically* — property-tested
//!   across `Deterministic`, `Parallel{1}` and `Parallel{N}`.
//! * A seeded lock-order deadlock panics (never hangs) under both
//!   engines, with the same virtual-time snapshot headline.
//! * p = 16 and p = 256 smoke runs are deterministic (the CI jobs;
//!   `--ignored` locally to keep the default suite snappy).

use lots::apps::runner::{run_app, RunConfig, RunOutcome, System};
use lots::apps::{churn::ChurnParams, rx::RxParams, sor::SorParams};
use lots::core::{run_cluster, ClusterOptions, ClusterReport, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;
use lots::sim::{FaultPlan, PanicFault, SchedulerMode, SimDuration, TimeCategory, ALL_CATEGORIES};
use proptest::prelude::*;

const SOR_SMALL: SorParams = SorParams { n: 64, iters: 8 };
const RX_SMALL: RxParams = RxParams {
    total: 1 << 12,
    passes: 2,
    seed: 20040920,
};

/// Every observable number in a [`RunOutcome`], serialized. Two runs
/// are "byte-identical" iff these strings match.
fn outcome_fingerprint(o: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "chk={} t={} exec={} bytes={} msgs={} checks={} faults={} so={} si={}",
        o.combined.checksum,
        o.combined.elapsed.nanos(),
        o.exec_time.nanos(),
        o.bytes_sent,
        o.msgs_sent,
        o.access_checks,
        o.page_faults,
        o.swaps_out,
        o.swaps_in,
    );
    for (label, d) in [
        ("chk", o.time_access_check),
        ("lob", o.time_large_object),
        ("net", o.time_network),
        ("syn", o.time_sync),
        ("dsk", o.time_disk),
        ("cmp", o.time_compute),
    ] {
        let _ = write!(s, " {label}={}", d.nanos());
    }
    for (i, n) in o.per_node.iter().enumerate() {
        let _ = write!(s, " n{i}=({},{})", n.checksum, n.elapsed.nanos());
    }
    // Scheduler counters: turns/wakes/epochs are pure functions of the
    // simulated schedule and must agree across engines. The host-side
    // fields (max_concurrent, worker busy time) are deliberately
    // excluded — they describe host execution, not the simulation.
    if let Some(sched) = &o.sched {
        let _ = write!(
            s,
            " sched=({},{},{})",
            sched.turns, sched.wakes, sched.epochs
        );
    }
    s
}

/// Every observable number in a LOTS [`ClusterReport`], serialized.
fn report_fingerprint(r: &ClusterReport) -> String {
    use std::fmt::Write as _;
    let mut s = format!("seed={} exec={}", r.seed, r.exec_time.nanos());
    for nd in &r.nodes {
        let _ = write!(
            s,
            " [{} t={} chk={} sw={}/{} obj={} swap={} tx={}/{} rx={}/{}",
            nd.me,
            nd.time.nanos(),
            nd.stats.access_checks(),
            nd.stats.swaps_out(),
            nd.stats.swaps_in(),
            nd.object_bytes,
            nd.swapped_bytes,
            nd.traffic.msgs_sent(),
            nd.traffic.bytes_sent(),
            nd.traffic.msgs_received(),
            nd.traffic.bytes_received(),
        );
        for cat in ALL_CATEGORIES {
            let _ = write!(s, " {}={}", cat.name(), nd.stats.time_in(cat).nanos());
        }
        s.push(']');
    }
    s
}

fn cfg(system: System, n: usize, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(system, n, p4_fedora());
    c.seed = seed;
    c
}

#[test]
fn sor_same_seed_is_byte_identical_on_all_three_systems() {
    for system in [System::Lots, System::LotsX, System::Jiajia] {
        let a = outcome_fingerprint(&run_app(&cfg(system, 4, 42), SOR_SMALL));
        let b = outcome_fingerprint(&run_app(&cfg(system, 4, 42), SOR_SMALL));
        assert_eq!(a, b, "SOR drifted between same-seed runs on {system:?}");
    }
}

#[test]
fn rx_same_seed_is_byte_identical_on_all_three_systems() {
    for system in [System::Lots, System::LotsX, System::Jiajia] {
        let a = outcome_fingerprint(&run_app(&cfg(system, 4, 42), RX_SMALL));
        let b = outcome_fingerprint(&run_app(&cfg(system, 4, 42), RX_SMALL));
        assert_eq!(a, b, "RX drifted between same-seed runs on {system:?}");
    }
}

#[test]
fn cluster_report_is_byte_identical_including_swap_pressure() {
    // Tiny DMM: the swap machinery engages, and its disk timing must
    // reproduce too.
    let run = || {
        let opts = ClusterOptions::new(2, LotsConfig::small(48 * 1024), p4_fedora()).with_seed(7);
        let (sums, report) = run_cluster(opts, |dsm| {
            let a = dsm.alloc::<i64>(2048);
            let b = dsm.alloc::<i64>(2048);
            let per = 2048 / dsm.n();
            let base = dsm.me() * per;
            for i in 0..per {
                a.write(base + i, (base + i) as i64);
            }
            dsm.barrier();
            let mut sum = 0i64;
            for i in 0..2048 {
                sum += a.read(i);
                if i % 512 == 0 {
                    b.write(i, sum); // ping-pong between objects
                }
            }
            dsm.barrier();
            sum
        });
        (sums, report_fingerprint(&report))
    };
    let (s1, f1) = run();
    let (s2, f2) = run();
    assert_eq!(s1, s2);
    assert_eq!(f1, f2, "swap-pressure run must reproduce exactly");
}

#[test]
fn seed_steers_workload_data_end_to_end() {
    let a = run_app(&cfg(System::Lots, 2, 1), RX_SMALL);
    let b = run_app(&cfg(System::Lots, 2, 2), RX_SMALL);
    let c = run_app(&cfg(System::Lots, 2, 1), RX_SMALL);
    assert_ne!(
        a.combined.checksum, b.combined.checksum,
        "different seeds must sort different key sets"
    );
    assert_eq!(a.combined.checksum, c.combined.checksum);
}

#[test]
fn report_surfaces_the_seed() {
    let opts = ClusterOptions::new(1, LotsConfig::small(1 << 20), p4_fedora()).with_seed(31337);
    let (seeds, report) = run_cluster(opts, |dsm| dsm.seed());
    assert_eq!(seeds, vec![31337]);
    assert_eq!(report.seed, 31337);
}

#[test]
#[should_panic(expected = "fault injection: node 1 killed entering barrier 2")]
fn injected_panic_rides_the_poisoning_path() {
    let opts =
        ClusterOptions::new(4, LotsConfig::small(1 << 20), p4_fedora()).with_faults(FaultPlan {
            panic_node: Some(PanicFault {
                node: 1,
                at_barrier: 2,
            }),
            ..FaultPlan::none()
        });
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(64);
        a.write(dsm.me(), 1);
        dsm.barrier(); // survives
        a.write(dsm.me() + 4, 2);
        dsm.barrier(); // node 1 dies here; peers must not hang
        a.read(0)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random message jitter and a random straggler never change what
    /// the application computes — only when.
    #[test]
    fn fault_delays_never_change_results(
        fault_seed in any::<u64>(),
        delay_us in 1u64..400,
        slow_node in 0usize..4,
        slow_pct in 0u64..150,
    ) {
        let baseline = run_app(&cfg(System::Lots, 4, 9), RX_SMALL);
        let mut faulted = cfg(System::Lots, 4, 9);
        faulted.faults = FaultPlan {
            seed: fault_seed,
            max_msg_delay: SimDuration::from_micros(delay_us),
            cpu_slowdown: vec![(slow_node, 1.0 + slow_pct as f64 / 100.0)],
            ..FaultPlan::none()
        };
        let perturbed = run_app(&faulted, RX_SMALL);
        prop_assert_eq!(baseline.combined.checksum, perturbed.combined.checksum);
        prop_assert_eq!(baseline.access_checks, perturbed.access_checks);
        // And the perturbed run itself must still be reproducible.
        let again = run_app(&faulted, RX_SMALL);
        prop_assert_eq!(outcome_fingerprint(&perturbed), outcome_fingerprint(&again));
    }
}

/// The CI smoke job: a p = 16 SOR run (32 app + comm threads on the
/// turnstile) completes and reproduces exactly. `--ignored` locally.
#[test]
#[ignore = "CI smoke job: run explicitly with --ignored"]
fn p16_sor_determinism_smoke() {
    let a = run_app(&cfg(System::Lots, 16, 2004), SorParams { n: 128, iters: 8 });
    let b = run_app(&cfg(System::Lots, 16, 2004), SorParams { n: 128, iters: 8 });
    assert_eq!(
        outcome_fingerprint(&a),
        outcome_fingerprint(&b),
        "p=16 SOR drifted between same-seed runs"
    );
    assert!(a.exec_time.nanos() > 0);
    // Sync-wait must be recorded: 16 nodes really rendezvoused.
    assert!(a.time_sync > SimDuration::ZERO);
}

/// Free-running mode still computes the right answers (times may vary).
#[test]
fn free_running_mode_remains_correct() {
    let mut c = cfg(System::Lots, 4, 42);
    c.scheduler = lots::sim::SchedulerMode::FreeRunning;
    let out = run_app(&c, SOR_SMALL);
    let det = run_app(&cfg(System::Lots, 4, 42), SOR_SMALL);
    assert_eq!(out.combined.checksum, det.combined.checksum);
    assert_eq!(out.access_checks, det.access_checks);
}

// ---------------------------------------------------------------------
// PR 6: the conservative parallel engine vs. the sequential oracle.
// ---------------------------------------------------------------------

/// The engine matrix every parallel test sweeps: the sequential oracle,
/// a one-worker parallel engine (same epochs, degenerate concurrency)
/// and a genuinely concurrent pool.
const ENGINES: [SchedulerMode; 3] = [
    SchedulerMode::Deterministic,
    SchedulerMode::Parallel { workers: 1 },
    SchedulerMode::Parallel { workers: 4 },
];

fn cfg_with(system: System, n: usize, seed: u64, mode: SchedulerMode) -> RunConfig {
    let mut c = cfg(system, n, seed);
    c.scheduler = mode;
    c
}

/// A churn configuration small enough for the default suite.
const CHURN_SMALL: ChurnParams = ChurnParams {
    phases: 6,
    objs_per_phase: 2,
    elems: 2048,
    retain: 1,
    ckpt_elems: 16,
};

#[test]
fn parallel_engine_matches_sequential_oracle_on_sor() {
    let oracle = outcome_fingerprint(&run_app(
        &cfg_with(System::Lots, 4, 42, SchedulerMode::Deterministic),
        SOR_SMALL,
    ));
    for mode in ENGINES {
        let got = outcome_fingerprint(&run_app(&cfg_with(System::Lots, 4, 42, mode), SOR_SMALL));
        assert_eq!(got, oracle, "SOR diverged from the oracle under {mode:?}");
    }
}

#[test]
fn parallel_engine_matches_sequential_oracle_on_rx() {
    let oracle = outcome_fingerprint(&run_app(
        &cfg_with(System::Lots, 4, 42, SchedulerMode::Deterministic),
        RX_SMALL,
    ));
    for mode in ENGINES {
        let got = outcome_fingerprint(&run_app(&cfg_with(System::Lots, 4, 42, mode), RX_SMALL));
        assert_eq!(got, oracle, "RX diverged from the oracle under {mode:?}");
    }
}

#[test]
fn parallel_engine_matches_sequential_oracle_on_object_churn() {
    let oracle = outcome_fingerprint(&run_app(
        &cfg_with(System::Lots, 4, 42, SchedulerMode::Deterministic),
        CHURN_SMALL,
    ));
    for mode in ENGINES {
        let got = outcome_fingerprint(&run_app(&cfg_with(System::Lots, 4, 42, mode), CHURN_SMALL));
        assert_eq!(got, oracle, "churn diverged from the oracle under {mode:?}");
    }
}

#[test]
fn parallel_engine_matches_oracle_on_jiajia_too() {
    let oracle = outcome_fingerprint(&run_app(
        &cfg_with(System::Jiajia, 4, 42, SchedulerMode::Deterministic),
        SOR_SMALL,
    ));
    for mode in ENGINES {
        let got = outcome_fingerprint(&run_app(&cfg_with(System::Jiajia, 4, 42, mode), SOR_SMALL));
        assert_eq!(
            got, oracle,
            "JIAJIA SOR diverged from oracle under {mode:?}"
        );
    }
}

/// Run an app, capturing either its fingerprint or its panic message —
/// faults that kill a node must kill it *identically* on every engine.
fn fingerprint_or_panic(cfg: &RunConfig, prog: impl lots::apps::adapter::DsmProgram) -> String {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        outcome_fingerprint(&run_app(cfg, prog))
    }));
    match res {
        Ok(fp) => format!("ok:{fp}"),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            format!("panic:{msg}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random fault plans — message jitter, a straggler node, and an
    /// optional barrier kill — produce byte-identical outcomes (or
    /// byte-identical panics) across the sequential oracle and both
    /// parallel pool widths, on all three committed workload shapes.
    #[test]
    fn random_faults_are_engine_invariant(
        fault_seed in any::<u64>(),
        delay_us in 0u64..400,
        slow_node in 0usize..4,
        slow_pct in 0u64..150,
        kill_roll in 0u64..10,
        kill_node in 0usize..4,
        kill_barrier in 1u64..3,
    ) {
        // ~30% of cases also kill a node at a barrier.
        let kill = (kill_roll < 3).then_some((kill_node, kill_barrier));
        let faults = FaultPlan {
            seed: fault_seed,
            max_msg_delay: SimDuration::from_micros(delay_us),
            cpu_slowdown: vec![(slow_node, 1.0 + slow_pct as f64 / 100.0)],
            panic_node: kill.map(|(node, at_barrier)| PanicFault { node, at_barrier }),
            ..FaultPlan::none()
        };
        for (label, prog) in [("sor", Ok(SOR_SMALL)), ("rx", Err(RX_SMALL))] {
            let run = |mode: SchedulerMode| {
                let mut c = cfg_with(System::Lots, 4, 9, mode);
                c.faults = faults.clone();
                match prog {
                    Ok(p) => fingerprint_or_panic(&c, p),
                    Err(p) => fingerprint_or_panic(&c, p),
                }
            };
            let oracle = run(SchedulerMode::Deterministic);
            for mode in ENGINES {
                prop_assert_eq!(
                    run(mode),
                    oracle.clone(),
                    "{} fault outcome diverged under {:?}",
                    label,
                    mode
                );
            }
        }
    }
}

/// Satellite (b): a seeded lock-order deadlock (AB–BA across two nodes)
/// must panic with the engine's virtual-time snapshot — never hang —
/// and do so under both the sequential oracle and the parallel pool.
#[test]
fn seeded_deadlock_panics_identically_under_both_engines() {
    let deadlock = |mode: SchedulerMode| {
        let opts =
            ClusterOptions::new(2, LotsConfig::small(1 << 20), p4_fedora()).with_scheduler(mode);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster(opts, |dsm| {
                let a = dsm.alloc::<i64>(64);
                let (first, second) = if dsm.me() == 0 { (1, 2) } else { (2, 1) };
                dsm.lock(first);
                // Force real lock overlap: both nodes hold their first
                // lock across a data exchange before requesting the
                // other's — the classic AB-BA cycle.
                a.write(dsm.me(), 1);
                let _ = a.read(1 - dsm.me());
                dsm.lock(second);
                dsm.unlock(second);
                dsm.unlock(first);
            })
        }));
        let payload = res.expect_err("AB-BA deadlock must panic, not hang");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
            })
            .expect("panic payload should be a string")
    };
    let seq = deadlock(SchedulerMode::Deterministic);
    let par = deadlock(SchedulerMode::Parallel { workers: 2 });
    // Which thread's deadlock panic wins the propagation race varies
    // (detector vs. parked task), but every one of them carries the
    // virtual-time deadlock headline — the reason-annotated snapshot
    // itself is unit-tested in `lots_sim::sched`.
    assert!(
        seq.contains("virtual-time deadlock"),
        "sequential engine must name the deadlock: {seq}"
    );
    assert!(
        par.contains("virtual-time deadlock"),
        "parallel engine must name the deadlock: {par}"
    );
}

/// The p = 256 weak-scaling smoke (CI: `--ignored`): SOR and object
/// churn complete in seconds under the parallel pool, and the parallel
/// fingerprint equals the sequential oracle's at full scale.
#[test]
#[ignore = "CI weak-scaling job: run explicitly with --ignored"]
fn p256_parallel_matches_oracle_smoke() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let sor = SorParams { n: 512, iters: 2 };
    let churn = ChurnParams {
        phases: 4,
        objs_per_phase: 1,
        elems: 1024,
        retain: 1,
        ckpt_elems: 16,
    };
    let mut cseq = cfg_with(System::Lots, 256, 2004, SchedulerMode::Deterministic);
    let mut cpar = cfg_with(System::Lots, 256, 2004, SchedulerMode::Parallel { workers });
    cseq.dmm_bytes = 4 << 20;
    cpar.dmm_bytes = 4 << 20;
    let a = outcome_fingerprint(&run_app(&cseq, sor));
    let b = outcome_fingerprint(&run_app(&cpar, sor));
    assert_eq!(a, b, "p=256 SOR: parallel diverged from the oracle");
    let a = outcome_fingerprint(&run_app(&cseq, churn));
    let b = outcome_fingerprint(&run_app(&cpar, churn));
    assert_eq!(a, b, "p=256 churn: parallel diverged from the oracle");
}

#[test]
fn deterministic_sync_wait_is_attributed() {
    // Sanity: the turnstile still charges SyncWait like the condvar
    // path did (the accounting is analytic, not wall-clock).
    let out = run_app(&cfg(System::Lots, 4, 0), SOR_SMALL);
    assert!(out.time_sync > SimDuration::ZERO);
    let _ = TimeCategory::SyncWait; // category stays public API
}
