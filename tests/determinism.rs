//! PR 3 acceptance: the deterministic virtual-time scheduler makes
//! whole cluster runs bit-reproducible.
//!
//! * Same seed ⇒ byte-identical reports (clocks, stats, traffic) on
//!   all three systems (LOTS, LOTS-x, JIAJIA), for SOR and RX.
//! * Seeds actually steer the seeded workloads' data end to end.
//! * Random `FaultPlan` message delays and CPU slowdowns change only
//!   *times*, never application results (Scope Consistency hides
//!   latency, not values) — property-tested.
//! * An injected node panic rides the PR 1 poisoning path.
//! * A p = 16 SOR run is deterministic (the CI smoke job; `--ignored`
//!   locally to keep the default suite snappy).

use lots::apps::runner::{run_app, RunConfig, RunOutcome, System};
use lots::apps::{rx::RxParams, sor::SorParams};
use lots::core::{run_cluster, ClusterOptions, ClusterReport, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;
use lots::sim::{FaultPlan, PanicFault, SimDuration, TimeCategory, ALL_CATEGORIES};
use proptest::prelude::*;

const SOR_SMALL: SorParams = SorParams { n: 64, iters: 8 };
const RX_SMALL: RxParams = RxParams {
    total: 1 << 12,
    passes: 2,
    seed: 20040920,
};

/// Every observable number in a [`RunOutcome`], serialized. Two runs
/// are "byte-identical" iff these strings match.
fn outcome_fingerprint(o: &RunOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "chk={} t={} exec={} bytes={} msgs={} checks={} faults={} so={} si={}",
        o.combined.checksum,
        o.combined.elapsed.nanos(),
        o.exec_time.nanos(),
        o.bytes_sent,
        o.msgs_sent,
        o.access_checks,
        o.page_faults,
        o.swaps_out,
        o.swaps_in,
    );
    for (label, d) in [
        ("chk", o.time_access_check),
        ("lob", o.time_large_object),
        ("net", o.time_network),
        ("syn", o.time_sync),
        ("dsk", o.time_disk),
        ("cmp", o.time_compute),
    ] {
        let _ = write!(s, " {label}={}", d.nanos());
    }
    for (i, n) in o.per_node.iter().enumerate() {
        let _ = write!(s, " n{i}=({},{})", n.checksum, n.elapsed.nanos());
    }
    s
}

/// Every observable number in a LOTS [`ClusterReport`], serialized.
fn report_fingerprint(r: &ClusterReport) -> String {
    use std::fmt::Write as _;
    let mut s = format!("seed={} exec={}", r.seed, r.exec_time.nanos());
    for nd in &r.nodes {
        let _ = write!(
            s,
            " [{} t={} chk={} sw={}/{} obj={} swap={} tx={}/{} rx={}/{}",
            nd.me,
            nd.time.nanos(),
            nd.stats.access_checks(),
            nd.stats.swaps_out(),
            nd.stats.swaps_in(),
            nd.object_bytes,
            nd.swapped_bytes,
            nd.traffic.msgs_sent(),
            nd.traffic.bytes_sent(),
            nd.traffic.msgs_received(),
            nd.traffic.bytes_received(),
        );
        for cat in ALL_CATEGORIES {
            let _ = write!(s, " {}={}", cat.name(), nd.stats.time_in(cat).nanos());
        }
        s.push(']');
    }
    s
}

fn cfg(system: System, n: usize, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(system, n, p4_fedora());
    c.seed = seed;
    c
}

#[test]
fn sor_same_seed_is_byte_identical_on_all_three_systems() {
    for system in [System::Lots, System::LotsX, System::Jiajia] {
        let a = outcome_fingerprint(&run_app(&cfg(system, 4, 42), SOR_SMALL));
        let b = outcome_fingerprint(&run_app(&cfg(system, 4, 42), SOR_SMALL));
        assert_eq!(a, b, "SOR drifted between same-seed runs on {system:?}");
    }
}

#[test]
fn rx_same_seed_is_byte_identical_on_all_three_systems() {
    for system in [System::Lots, System::LotsX, System::Jiajia] {
        let a = outcome_fingerprint(&run_app(&cfg(system, 4, 42), RX_SMALL));
        let b = outcome_fingerprint(&run_app(&cfg(system, 4, 42), RX_SMALL));
        assert_eq!(a, b, "RX drifted between same-seed runs on {system:?}");
    }
}

#[test]
fn cluster_report_is_byte_identical_including_swap_pressure() {
    // Tiny DMM: the swap machinery engages, and its disk timing must
    // reproduce too.
    let run = || {
        let opts = ClusterOptions::new(2, LotsConfig::small(48 * 1024), p4_fedora()).with_seed(7);
        let (sums, report) = run_cluster(opts, |dsm| {
            let a = dsm.alloc::<i64>(2048);
            let b = dsm.alloc::<i64>(2048);
            let per = 2048 / dsm.n();
            let base = dsm.me() * per;
            for i in 0..per {
                a.write(base + i, (base + i) as i64);
            }
            dsm.barrier();
            let mut sum = 0i64;
            for i in 0..2048 {
                sum += a.read(i);
                if i % 512 == 0 {
                    b.write(i, sum); // ping-pong between objects
                }
            }
            dsm.barrier();
            sum
        });
        (sums, report_fingerprint(&report))
    };
    let (s1, f1) = run();
    let (s2, f2) = run();
    assert_eq!(s1, s2);
    assert_eq!(f1, f2, "swap-pressure run must reproduce exactly");
}

#[test]
fn seed_steers_workload_data_end_to_end() {
    let a = run_app(&cfg(System::Lots, 2, 1), RX_SMALL);
    let b = run_app(&cfg(System::Lots, 2, 2), RX_SMALL);
    let c = run_app(&cfg(System::Lots, 2, 1), RX_SMALL);
    assert_ne!(
        a.combined.checksum, b.combined.checksum,
        "different seeds must sort different key sets"
    );
    assert_eq!(a.combined.checksum, c.combined.checksum);
}

#[test]
fn report_surfaces_the_seed() {
    let opts = ClusterOptions::new(1, LotsConfig::small(1 << 20), p4_fedora()).with_seed(31337);
    let (seeds, report) = run_cluster(opts, |dsm| dsm.seed());
    assert_eq!(seeds, vec![31337]);
    assert_eq!(report.seed, 31337);
}

#[test]
#[should_panic(expected = "fault injection: node 1 killed entering barrier 2")]
fn injected_panic_rides_the_poisoning_path() {
    let opts =
        ClusterOptions::new(4, LotsConfig::small(1 << 20), p4_fedora()).with_faults(FaultPlan {
            panic_node: Some(PanicFault {
                node: 1,
                at_barrier: 2,
            }),
            ..FaultPlan::none()
        });
    let _ = run_cluster(opts, |dsm| {
        let a = dsm.alloc::<i64>(64);
        a.write(dsm.me(), 1);
        dsm.barrier(); // survives
        a.write(dsm.me() + 4, 2);
        dsm.barrier(); // node 1 dies here; peers must not hang
        a.read(0)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random message jitter and a random straggler never change what
    /// the application computes — only when.
    #[test]
    fn fault_delays_never_change_results(
        fault_seed in any::<u64>(),
        delay_us in 1u64..400,
        slow_node in 0usize..4,
        slow_pct in 0u64..150,
    ) {
        let baseline = run_app(&cfg(System::Lots, 4, 9), RX_SMALL);
        let mut faulted = cfg(System::Lots, 4, 9);
        faulted.faults = FaultPlan {
            seed: fault_seed,
            max_msg_delay: SimDuration::from_micros(delay_us),
            cpu_slowdown: vec![(slow_node, 1.0 + slow_pct as f64 / 100.0)],
            ..FaultPlan::none()
        };
        let perturbed = run_app(&faulted, RX_SMALL);
        prop_assert_eq!(baseline.combined.checksum, perturbed.combined.checksum);
        prop_assert_eq!(baseline.access_checks, perturbed.access_checks);
        // And the perturbed run itself must still be reproducible.
        let again = run_app(&faulted, RX_SMALL);
        prop_assert_eq!(outcome_fingerprint(&perturbed), outcome_fingerprint(&again));
    }
}

/// The CI smoke job: a p = 16 SOR run (32 app + comm threads on the
/// turnstile) completes and reproduces exactly. `--ignored` locally.
#[test]
#[ignore = "CI smoke job: run explicitly with --ignored"]
fn p16_sor_determinism_smoke() {
    let a = run_app(&cfg(System::Lots, 16, 2004), SorParams { n: 128, iters: 8 });
    let b = run_app(&cfg(System::Lots, 16, 2004), SorParams { n: 128, iters: 8 });
    assert_eq!(
        outcome_fingerprint(&a),
        outcome_fingerprint(&b),
        "p=16 SOR drifted between same-seed runs"
    );
    assert!(a.exec_time.nanos() > 0);
    // Sync-wait must be recorded: 16 nodes really rendezvoused.
    assert!(a.time_sync > SimDuration::ZERO);
}

/// Free-running mode still computes the right answers (times may vary).
#[test]
fn free_running_mode_remains_correct() {
    let mut c = cfg(System::Lots, 4, 42);
    c.scheduler = lots::sim::SchedulerMode::FreeRunning;
    let out = run_app(&c, SOR_SMALL);
    let det = run_app(&cfg(System::Lots, 4, 42), SOR_SMALL);
    assert_eq!(out.combined.checksum, det.combined.checksum);
    assert_eq!(out.access_checks, det.access_checks);
}

#[test]
fn deterministic_sync_wait_is_attributed() {
    // Sanity: the turnstile still charges SyncWait like the condvar
    // path did (the accounting is analytic, not wall-clock).
    let out = run_app(&cfg(System::Lots, 4, 0), SOR_SMALL);
    assert!(out.time_sync > SimDuration::ZERO);
    let _ = TimeCategory::SyncWait; // category stays public API
}
