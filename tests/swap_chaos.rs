//! Chaos battery: `lots_sim::FaultPlan` wired to swap-heavy runs.
//!
//! Message jitter, a straggler CPU and a mid-run node panic are
//! injected while the swap subsystem is churning objects through the
//! disk device. The invariants:
//!
//! * Faults that only stretch time (delays, slowdowns) never change
//!   what a swap-heavy run computes — and the *faulted* run itself
//!   replays bit-for-bit (the PR 3 determinism contract extended over
//!   the new swap machinery: batched write-behind, read-ahead,
//!   compression).
//! * A node panic in the middle of swap traffic poisons the sync
//!   services cleanly: peers fail loudly at their next rendezvous,
//!   nothing hangs, and the original panic is what surfaces.

use lots::core::{
    run_cluster, ClusterOptions, ClusterReport, DsmApi, DsmSlice, LotsConfig, SwapConfig,
};
use lots::sim::machine::p4_fedora;
use lots::sim::{FaultPlan, PanicFault, SimDuration, ALL_CATEGORIES};
use proptest::prelude::*;

const OBJS: usize = 12;
const LEN: usize = 1024; // i64 elements → 8 KB per object
const TINY_DMM: usize = 64 * 1024; // holds 4 of the 12 objects

fn mix(seed: u64, r: usize, i: usize) -> i64 {
    let mut x = seed
        .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x ^ (x >> 31)) as i64
}

/// Swap-heavy SPMD kernel: two barrier intervals of strided fills and
/// cross-node reads over a 3×-overcommitted DMM area.
fn swap_heavy_kernel<D: DsmApi>(dsm: &D) -> u64 {
    let rows: Vec<D::Slice<'_, i64>> = (0..OBJS).map(|_| dsm.alloc::<i64>(LEN)).collect();
    let (me, n) = (dsm.me(), dsm.n());
    for r in (me..OBJS).step_by(n) {
        let mut v = rows[r].view_mut(0..LEN);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = mix(dsm.seed(), r, i);
        }
    }
    dsm.barrier();
    let mut sum = 0u64;
    for row in &rows {
        sum = sum.wrapping_mul(31).wrapping_add(
            row.view(0..LEN)
                .iter()
                .fold(0u64, |a, &v| a.wrapping_add(v as u64)),
        );
    }
    dsm.barrier();
    // Second interval: rewrite the strided rows, forcing dirty
    // re-evictions with live twins while replies race the faults.
    for r in (me..OBJS).step_by(n) {
        let mut v = rows[r].view_mut(0..LEN);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = slot.wrapping_add(mix(dsm.seed() ^ 1, r, i));
        }
    }
    dsm.barrier();
    for row in &rows {
        sum = sum.wrapping_mul(31).wrapping_add(
            row.view(0..LEN)
                .iter()
                .fold(0u64, |a, &v| a.wrapping_add(v as u64)),
        );
    }
    sum
}

fn fingerprint(r: &ClusterReport) -> String {
    use std::fmt::Write as _;
    let mut s = format!("seed={} exec={}", r.seed, r.exec_time.nanos());
    for nd in &r.nodes {
        let _ = write!(
            s,
            " [{} t={} sw={}/{} swb={}/{} pre={} tx={}/{}",
            nd.me,
            nd.time.nanos(),
            nd.stats.swaps_out(),
            nd.stats.swaps_in(),
            nd.stats.swap_out_bytes(),
            nd.stats.swap_in_bytes(),
            nd.stats.prefetch_hits(),
            nd.traffic.msgs_sent(),
            nd.traffic.bytes_sent(),
        );
        for cat in ALL_CATEGORIES {
            let _ = write!(s, " {}={}", cat.name(), nd.stats.time_in(cat).nanos());
        }
        s.push(']');
    }
    s
}

fn opts(faults: FaultPlan) -> ClusterOptions {
    ClusterOptions::new(
        2,
        LotsConfig::small(TINY_DMM).with_swap(SwapConfig::tuned()),
        p4_fedora(),
    )
    .with_seed(5)
    .with_faults(faults)
}

#[test]
fn delays_and_stragglers_stretch_swap_runs_without_changing_results() {
    let (clean, clean_rep) = run_cluster(opts(FaultPlan::none()), swap_heavy_kernel);
    assert!(
        clean_rep.total(|n| n.stats.swaps_out()) > 0,
        "kernel must actually swap"
    );
    let faults = FaultPlan {
        seed: 99,
        max_msg_delay: SimDuration::from_millis(1),
        cpu_slowdown: vec![(1, 1.7)],
        ..FaultPlan::none()
    };
    let (faulted, faulted_rep) = run_cluster(opts(faults.clone()), swap_heavy_kernel);
    assert_eq!(clean, faulted, "faults must stretch time, not data");
    assert!(
        faulted_rep.exec_time > clean_rep.exec_time,
        "jitter + a straggler must cost virtual time ({} vs {})",
        faulted_rep.exec_time,
        clean_rep.exec_time
    );
    // The faulted run replays bit-for-bit.
    let (again, again_rep) = run_cluster(opts(faults), swap_heavy_kernel);
    assert_eq!(faulted, again);
    assert_eq!(fingerprint(&faulted_rep), fingerprint(&again_rep));
}

#[test]
#[should_panic(expected = "fault injection: node 1 killed entering barrier 2")]
fn node_panic_during_swap_traffic_poisons_cleanly() {
    // Node 1 dies at its second barrier — right between the fill and
    // re-write intervals, while evictions are in flight. The peers must
    // fail loudly (poisoned services), never hang, and the injected
    // panic is the one that propagates.
    let faults = FaultPlan {
        panic_node: Some(PanicFault {
            node: 1,
            at_barrier: 2,
        }),
        ..FaultPlan::none()
    };
    let _ = run_cluster(opts(faults), swap_heavy_kernel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random jitter/straggler plans over the swap-heavy kernel:
    /// results never change, and every faulted run replays exactly.
    #[test]
    fn random_fault_plans_never_corrupt_swap_runs(
        fault_seed in any::<u64>(),
        delay_us in 1u64..700,
        slow_node in 0usize..2,
        slow_pct in 0u64..120,
    ) {
        let (clean, _) = run_cluster(opts(FaultPlan::none()), swap_heavy_kernel);
        let faults = FaultPlan {
            seed: fault_seed,
            max_msg_delay: SimDuration::from_micros(delay_us),
            cpu_slowdown: vec![(slow_node, 1.0 + slow_pct as f64 / 100.0)],
            ..FaultPlan::none()
        };
        let (faulted, rep1) = run_cluster(opts(faults.clone()), swap_heavy_kernel);
        prop_assert_eq!(&clean, &faulted);
        let (again, rep2) = run_cluster(opts(faults), swap_heavy_kernel);
        prop_assert_eq!(faulted, again);
        prop_assert_eq!(fingerprint(&rep1), fingerprint(&rep2));
    }
}
