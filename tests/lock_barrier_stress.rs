//! Regression stress for the lock→barrier hand-off: a migratory counter
//! incremented under one lock by three nodes, then merged at a barrier.
//! This is the scenario that once exposed a real-time race between the
//! comm thread applying remote barrier diffs and the app thread seeding
//! the per-word timestamp guard (fixed by max-merging the guard); it
//! must survive arbitrary thread interleavings.

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;

#[test]
fn migratory_counter_survives_interleaving() {
    for _ in 0..30 {
        let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
        let (results, _) = run_cluster(opts, |dsm| {
            let x = dsm.alloc::<i64>(4);
            for _ in 0..25 {
                dsm.lock(9);
                let v = x.read(2);
                x.write(2, v + 1);
                dsm.unlock(9);
            }
            dsm.barrier();
            x.read(2)
        });
        assert_eq!(results, vec![75, 75, 75], "lost updates across the barrier");
    }
}

#[test]
fn home_last_holder_keeps_its_update_across_barrier() {
    // Quickstart's lost-update shape: every node takes the lock exactly
    // once per interval and adds its stripe to one shared total. When
    // the counter's home is the LAST holder, its CS value exists only
    // in its own arena; an older remote interval diff racing in on the
    // comm thread before the guard was seeded used to overwrite it (and
    // make the home's twin diff read empty, so barrier_prepare's
    // guard-seeding never fired). The guard is now seeded at exit_cs.
    for _ in 0..20 {
        let nodes = 4usize;
        let opts = ClusterOptions::new(nodes, LotsConfig::small(1 << 20), p4_fedora());
        let (results, _) = run_cluster(opts, |dsm| {
            // Two allocations so the counter's home is node 1, which
            // also participates in the lock chain.
            let _pad = dsm.alloc::<i64>(8); // home 0
            let counter = dsm.alloc::<i64>(1); // home 1
            let mut total = 0i64;
            for round in 0..3 {
                let mine = (round * dsm.n() + dsm.me() + 1) as i64;
                dsm.with_lock(7, || counter.update(0, |v| v + mine));
                dsm.barrier();
                total = counter.read(0);
                dsm.barrier();
            }
            total
        });
        let expect: i64 = (1..=(3 * nodes) as i64).sum();
        assert_eq!(results, vec![expect; nodes], "lost a node's contribution");
    }
}

#[test]
fn mixed_lock_and_plain_writers_merge_correctly() {
    // One node updates words under the lock while others write disjoint
    // words outside any lock: the barrier must merge both kinds.
    for _ in 0..10 {
        let opts = ClusterOptions::new(3, LotsConfig::small(1 << 20), p4_fedora());
        let (results, _) = run_cluster(opts, |dsm| {
            let x = dsm.alloc::<i64>(8);
            match dsm.me() {
                0 => {
                    for _ in 0..5 {
                        dsm.with_lock(1, || x.update(0, |v| v + 1));
                    }
                }
                1 => x.write(3, 33),
                _ => x.write(5, 55),
            }
            dsm.barrier();
            (x.read(0), x.read(3), x.read(5))
        });
        assert_eq!(results, vec![(5, 33, 55); 3]);
    }
}
