//! PR 7 acceptance: the ScC race detector.
//!
//! * A deliberately racy workload (unsynchronized read/write of the
//!   same element) is flagged on all three systems, and the report
//!   reproduces byte-for-byte under the deterministic scheduler.
//! * Zero false positives: every paper workload (SOR, LU, ME, RX,
//!   large-object Test 2) plus object churn runs clean on LOTS,
//!   LOTS-x and JIAJIA — they are data-race-free by construction, so
//!   any report here is a detector bug.
//! * Analysis is observability-only: enabling it changes neither
//!   results nor a single virtual-time fingerprint, on any system.
//! * Lock-protocol fingerprints are stable across repeats and engines
//!   for both lock protocols and both diff modes — the regression
//!   gate for the HashMap→BTreeMap conversion in the protocol paths.

use lots::analyze::AnalyzeConfig;
use lots::apps::adapter::{AppResult, DsmProgram};
use lots::apps::runner::{run_app, RunConfig, RunOutcome, System};
use lots::apps::{
    churn::ChurnParams, largeobj, largeobj::LargeObjParams, lu::LuParams, me::MeParams,
    rx::RxParams, sor::SorParams,
};
use lots::core::{DiffMode, DsmApi, DsmSlice, LockProtocol, SchedulerMode};
use lots::sim::machine::p4_fedora;

const ALL_SYSTEMS: [System; 3] = [System::Lots, System::LotsX, System::Jiajia];

fn cfg(system: System, n: usize) -> RunConfig {
    let mut c = RunConfig::new(system, n, p4_fedora());
    c.seed = 42;
    c.analyze = AnalyzeConfig::races();
    c
}

/// Serialized race report: the whole observable output of a detection
/// run (object, byte span, both access sites).
fn races_of(out: &RunOutcome) -> String {
    out.races
        .as_ref()
        .expect("analysis was enabled")
        .to_string()
}

// ---------------------------------------------------------------------
// The seeded racy workload.
// ---------------------------------------------------------------------

/// Node 0 writes element 0 while node 1 reads it with no ordering
/// between them — the textbook ScC race. The post-race barrier only
/// proves the detector keys on the *access-time* clocks, not the
/// final ones.
#[derive(Debug, Clone, Copy)]
struct RacyKernel;

impl DsmProgram for RacyKernel {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        let a = dsm.alloc::<i64>(64);
        let mut chk = 0u64;
        if dsm.me() == 0 {
            a.write(0, dsm.seed() as i64 + 1);
        } else {
            chk = a.read(0) as u64;
        }
        dsm.barrier();
        chk = chk.wrapping_add(a.read(0) as u64);
        AppResult {
            checksum: chk,
            elapsed: lots::sim::SimDuration::ZERO,
        }
    }
}

#[test]
fn racy_workload_is_flagged_on_all_three_systems() {
    for system in ALL_SYSTEMS {
        let out = run_app(&cfg(system, 2), RacyKernel);
        let report = out.races.as_ref().expect("analysis was enabled");
        assert!(
            !report.is_empty(),
            "{}: unsynchronized R/W must be flagged",
            system.label()
        );
    }
}

#[test]
fn race_report_reproduces_byte_for_byte() {
    for system in ALL_SYSTEMS {
        let a = races_of(&run_app(&cfg(system, 2), RacyKernel));
        let b = races_of(&run_app(&cfg(system, 2), RacyKernel));
        assert!(!a.is_empty());
        assert_eq!(a, b, "{}: race report drifted", system.label());
    }
}

/// The synchronized twin of [`RacyKernel`]: same accesses, but the
/// reader waits out a barrier first. Exactly zero races.
#[derive(Debug, Clone, Copy)]
struct FixedKernel;

impl DsmProgram for FixedKernel {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        let a = dsm.alloc::<i64>(64);
        if dsm.me() == 0 {
            a.write(0, dsm.seed() as i64 + 1);
        }
        dsm.barrier();
        AppResult {
            checksum: a.read(0) as u64,
            elapsed: lots::sim::SimDuration::ZERO,
        }
    }
}

#[test]
fn barrier_ordering_silences_the_race() {
    for system in ALL_SYSTEMS {
        let out = run_app(&cfg(system, 2), FixedKernel);
        assert!(
            out.races.as_ref().expect("analysis on").is_empty(),
            "{}: barrier-ordered accesses are not a race",
            system.label()
        );
    }
}

// ---------------------------------------------------------------------
// Zero false positives on the committed workload suite.
// ---------------------------------------------------------------------

/// Wrapper: Test 2 (§4.3) as a [`DsmProgram`].
#[derive(Debug, Clone, Copy)]
struct LargeObjProgram(LargeObjParams);

impl DsmProgram for LargeObjProgram {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        let out = largeobj::large_object_test(dsm, self.0)
            .unwrap_or_else(|e| panic!("large-object test: {e}"));
        AppResult {
            checksum: out.sum as u64,
            elapsed: out.elapsed,
        }
    }
}

fn assert_clean(label: &str, system: System, out: &RunOutcome) {
    let report = out.races.as_ref().expect("analysis was enabled");
    assert!(
        report.is_empty(),
        "{label} on {} must be race-free, got:\n{report}",
        system.label()
    );
}

#[test]
fn sor_and_lu_run_clean_on_all_systems() {
    for system in ALL_SYSTEMS {
        let sor = run_app(&cfg(system, 4), SorParams { n: 64, iters: 4 });
        assert_clean("SOR", system, &sor);
        let lu = run_app(&cfg(system, 4), LuParams { n: 48 });
        assert_clean("LU", system, &lu);
    }
}

#[test]
fn me_and_rx_run_clean_on_all_systems() {
    for system in ALL_SYSTEMS {
        let me = run_app(
            &cfg(system, 4),
            MeParams {
                total: 1 << 10,
                seed: 20040920,
            },
        );
        assert_clean("ME", system, &me);
        let rx = run_app(
            &cfg(system, 4),
            RxParams {
                total: 1 << 10,
                passes: 2,
                seed: 20040920,
            },
        );
        assert_clean("RX", system, &rx);
    }
}

#[test]
fn largeobj_and_churn_run_clean_on_all_systems() {
    let lo = LargeObjProgram(LargeObjParams {
        rows: 6,
        row_elems: 2048,
    });
    let churn = ChurnParams {
        phases: 4,
        objs_per_phase: 2,
        elems: 1024,
        retain: 1,
        ckpt_elems: 16,
    };
    for system in ALL_SYSTEMS {
        assert_clean("large-object", system, &run_app(&cfg(system, 4), lo));
        assert_clean("churn", system, &run_app(&cfg(system, 4), churn));
    }
}

// ---------------------------------------------------------------------
// Analysis never perturbs the simulation.
// ---------------------------------------------------------------------

/// Everything observable about a run except the race report itself.
fn sim_fingerprint(o: &RunOutcome) -> String {
    format!(
        "chk={} t={} exec={} bytes={} msgs={} checks={} faults={} sync={}",
        o.combined.checksum,
        o.combined.elapsed.nanos(),
        o.exec_time.nanos(),
        o.bytes_sent,
        o.msgs_sent,
        o.access_checks,
        o.page_faults,
        o.time_sync.nanos(),
    )
}

#[test]
fn enabling_analysis_leaves_virtual_times_byte_identical() {
    for system in ALL_SYSTEMS {
        let mut off = cfg(system, 4);
        off.analyze = AnalyzeConfig::off();
        let without = run_app(&off, SorParams { n: 64, iters: 4 });
        let with = run_app(&cfg(system, 4), SorParams { n: 64, iters: 4 });
        assert!(without.races.is_none(), "off must mean no report");
        assert_eq!(
            sim_fingerprint(&without),
            sim_fingerprint(&with),
            "{}: the detector must be invisible to the simulation",
            system.label()
        );
    }
}

// ---------------------------------------------------------------------
// HashMap→BTreeMap conversion regression: lock-protocol fingerprints
// stay stable across repeats and engines in every protocol/diff-mode
// combination (these are the code paths whose state was converted).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct LockHeavyKernel;

impl DsmProgram for LockHeavyKernel {
    fn run<D: DsmApi>(&self, dsm: &D) -> AppResult {
        // Two objects mutated under one lock: the per-field timestamp
        // tables and the lock-carried object metadata (the converted
        // maps) both hold multi-object state.
        let a = dsm.alloc::<i64>(64);
        let b = dsm.alloc::<i64>(64);
        for round in 0..8 {
            dsm.lock(1);
            let at = round % 16;
            let v = a.read(at);
            a.write(at, v + 1);
            b.write(16 + at, v);
            dsm.unlock(1);
        }
        dsm.barrier();
        let sum: i64 = (0..64).map(|i| a.read(i) + b.read(i)).sum();
        AppResult {
            checksum: sum as u64,
            elapsed: lots::sim::SimDuration::ZERO,
        }
    }
}

#[test]
fn lock_protocol_fingerprints_survive_map_conversion() {
    for protocol in [
        LockProtocol::HomelessWriteUpdate,
        LockProtocol::WriteInvalidate,
    ] {
        for diff_mode in [DiffMode::PerFieldOnDemand, DiffMode::AccumulatedDiffs] {
            let mk = |mode: SchedulerMode| {
                let mut c = cfg(System::Lots, 4);
                c.scheduler = mode;
                c.lots_tweak = match (protocol, diff_mode) {
                    (LockProtocol::HomelessWriteUpdate, DiffMode::PerFieldOnDemand) => {
                        |l: &mut _| {
                            l.lock_protocol = LockProtocol::HomelessWriteUpdate;
                            l.diff_mode = DiffMode::PerFieldOnDemand;
                        }
                    }
                    (LockProtocol::HomelessWriteUpdate, DiffMode::AccumulatedDiffs) => {
                        |l: &mut _| {
                            l.lock_protocol = LockProtocol::HomelessWriteUpdate;
                            l.diff_mode = DiffMode::AccumulatedDiffs;
                        }
                    }
                    (LockProtocol::WriteInvalidate, DiffMode::PerFieldOnDemand) => |l: &mut _| {
                        l.lock_protocol = LockProtocol::WriteInvalidate;
                        l.diff_mode = DiffMode::PerFieldOnDemand;
                    },
                    (LockProtocol::WriteInvalidate, DiffMode::AccumulatedDiffs) => |l: &mut _| {
                        l.lock_protocol = LockProtocol::WriteInvalidate;
                        l.diff_mode = DiffMode::AccumulatedDiffs;
                    },
                };
                let out = run_app(&c, LockHeavyKernel);
                assert_clean("lock-heavy", System::Lots, &out);
                sim_fingerprint(&out)
            };
            let oracle = mk(SchedulerMode::Deterministic);
            let again = mk(SchedulerMode::Deterministic);
            let parallel = mk(SchedulerMode::Parallel { workers: 2 });
            assert_eq!(oracle, again, "{protocol:?}/{diff_mode:?} drifted");
            assert_eq!(
                oracle, parallel,
                "{protocol:?}/{diff_mode:?} diverged under the parallel engine"
            );
        }
    }
}
