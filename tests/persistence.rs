//! Persistence battery: the `lots-persist` journal must support a
//! cold-start restore whose replay is **bit-identical** to the
//! original run — on LOTS, the LOTS-x ablation, and JIAJIA — and the
//! journal must survive compaction and torn tails unchanged.
//!
//! Every restore here is an honest re-execution under a per-barrier
//! verify plan: the replay panics at the first barrier whose state
//! digest or virtual clock differs from the original log, so a green
//! assertion below proves byte-for-byte equivalence barrier by
//! barrier, not just at the end.

use std::sync::Arc;

use lots::core::{
    restore_cluster, run_cluster, ClusterOptions, CompactionConfig, DsmApi, DsmSlice, LotsConfig,
    PersistConfig, PersistStore,
};
use lots::jiajia::{restore_jiajia_cluster, run_jiajia_cluster, JiaOptions};
use lots::sim::machine::p4_fedora;
use lots::sim::SchedulerMode;
use proptest::prelude::*;

/// A random barrier-synchronized SPMD program: per interval and node,
/// writes into the node's own stripe of each object (data-race-free),
/// with optional free+realloc churn between intervals.
#[derive(Debug, Clone)]
struct Script {
    objects: usize,
    elems: usize,
    /// writes[interval][node] = (object, stripe index, value)
    writes: Vec<Vec<Vec<(usize, usize, i32)>>>,
    /// Intervals after which object 0 is freed and re-allocated (the
    /// lifecycle records the journal must carry).
    churn_interval: Option<usize>,
}

fn script_strategy(nodes: usize) -> impl Strategy<Value = Script> {
    (2usize..4, 8usize..25, 0usize..3).prop_flat_map(move |(objects, elems, churn)| {
        // 0 → no churn; k → free+realloc after interval k-1.
        let churn_interval = churn.checked_sub(1);
        let per = elems / nodes;
        let interval = proptest::collection::vec(
            proptest::collection::vec((0..objects, 0..per.max(1), any::<i32>()), 0..5),
            nodes,
        );
        proptest::collection::vec(interval, 2..5).prop_map(move |writes| Script {
            objects,
            elems,
            writes,
            churn_interval,
        })
    })
}

/// Run the script on any DSM; returns node 0's order-canonical
/// checksum of the final state.
fn run_script<D: DsmApi>(dsm: &D, script: &Script) -> u64 {
    let nodes = dsm.n();
    let per = script.elems / nodes;
    let mut objs: Vec<_> = (0..script.objects)
        .map(|_| dsm.alloc::<i32>(script.elems))
        .collect();
    for (k, interval) in script.writes.iter().enumerate() {
        for &(obj, i, v) in &interval[dsm.me()] {
            objs[obj].write(dsm.me() * per + i, v);
        }
        dsm.barrier();
        if script.churn_interval == Some(k) {
            // Lifecycle churn: free object 0 and re-allocate it, so
            // the journal sees Free + Alloc (and slot reuse) records.
            dsm.free(objs.remove(0));
            dsm.barrier();
            objs.insert(0, dsm.alloc::<i32>(script.elems));
            dsm.barrier();
        }
    }
    if dsm.me() == 0 {
        objs.iter()
            .flat_map(|o| o.read_vec(0, script.elems))
            .fold(0u64, |acc, v| acc.wrapping_mul(31).wrapping_add(v as u64))
    } else {
        0
    }
}

fn lots_opts(nodes: usize, dmm: usize, lots_x: bool, persist: PersistConfig) -> ClusterOptions {
    let lots = if lots_x {
        LotsConfig::lots_x(dmm)
    } else {
        LotsConfig::small(dmm)
    }
    .with_persist(persist);
    ClusterOptions::new(nodes, lots, p4_fedora())
}

/// Per-node fingerprint: final clock + traffic + sync stats. Equal
/// fingerprints mean the replay retraced the original run exactly.
fn lots_fingerprint(report: &lots::core::ClusterReport) -> String {
    report
        .nodes
        .iter()
        .map(|n| {
            format!(
                "{}:{}:{}:{}:{};",
                n.me,
                n.time.nanos(),
                n.traffic.bytes_sent(),
                n.traffic.msgs_sent(),
                n.stats.access_checks(),
            )
        })
        .collect()
}

fn jia_fingerprint(report: &lots::jiajia::JiaReport) -> String {
    report
        .nodes
        .iter()
        .map(|n| {
            format!(
                "{}:{}:{}:{};",
                n.me,
                n.time.nanos(),
                n.traffic.bytes_sent(),
                n.stats.page_faults(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// LOTS: restore + replay reproduces results and fingerprints
    /// bit-for-bit, with the digest/clock verify plan armed.
    #[test]
    fn lots_restore_replay_is_bit_identical(script in script_strategy(2)) {
        let script = Arc::new(script);
        let store = PersistStore::new(2);
        let opts = lots_opts(2, 1 << 20, false, PersistConfig::every(2))
            .with_persist_store(store.clone());
        let s1 = Arc::clone(&script);
        let (r1, rep1) = run_cluster(opts, move |dsm| run_script(dsm, &s1));
        let restored = store.restore().expect("journals restore");
        let s2 = Arc::clone(&script);
        let (r2, rep2) = restore_cluster(
            Arc::new(restored),
            lots_opts(2, 1 << 20, false, PersistConfig::every(2)),
            move |dsm| run_script(dsm, &s2),
        );
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(lots_fingerprint(&rep1), lots_fingerprint(&rep2));
    }

    /// Same property on the LOTS-x ablation under swap pressure (a
    /// tiny DMM keeps objects cycling through the backing store while
    /// the journal shares the disk device).
    #[test]
    fn lots_x_restore_replay_is_bit_identical(script in script_strategy(2)) {
        let script = Arc::new(script);
        let store = PersistStore::new(2);
        let opts = lots_opts(2, 16 * 1024, true, PersistConfig::every(1))
            .with_persist_store(store.clone());
        let s1 = Arc::clone(&script);
        let (r1, rep1) = run_cluster(opts, move |dsm| run_script(dsm, &s1));
        let restored = store.restore().expect("journals restore");
        let s2 = Arc::clone(&script);
        let (r2, rep2) = restore_cluster(
            Arc::new(restored),
            lots_opts(2, 16 * 1024, true, PersistConfig::every(1)),
            move |dsm| run_script(dsm, &s2),
        );
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(lots_fingerprint(&rep1), lots_fingerprint(&rep2));
    }

    /// JIAJIA: the same journal subsystem over pages instead of
    /// objects, same bit-for-bit restore guarantee.
    #[test]
    fn jiajia_restore_replay_is_bit_identical(script in script_strategy(2)) {
        let script = Arc::new(script);
        let store = PersistStore::new(2);
        let opts = JiaOptions::new(2, 4 << 20, p4_fedora())
            .with_persist(PersistConfig::every(2))
            .with_persist_store(store.clone());
        let s1 = Arc::clone(&script);
        let (r1, rep1) = run_jiajia_cluster(opts, move |dsm| run_script(dsm, &s1));
        let restored = store.restore().expect("journals restore");
        let s2 = Arc::clone(&script);
        let (r2, rep2) = restore_jiajia_cluster(
            Arc::new(restored),
            JiaOptions::new(2, 4 << 20, p4_fedora()).with_persist(PersistConfig::every(2)),
            move |dsm| run_script(dsm, &s2),
        );
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(jia_fingerprint(&rep1), jia_fingerprint(&rep2));
    }

    /// Compaction invariance: squashing the log must not change what a
    /// restore rebuilds — directory, names, and object content at the
    /// checkpoint are identical with and without compaction.
    #[test]
    fn compaction_preserves_restored_state(script in script_strategy(2)) {
        let script = Arc::new(script);
        let eager = CompactionConfig {
            enabled: true,
            garbage_permille: 1,
            min_log_bytes: 1,
            poll: lots::sim::SimDuration::from_micros(50),
        };
        let run = |compaction: Option<CompactionConfig>| {
            let persist = match compaction {
                Some(c) => PersistConfig::every(1).with_compaction(c),
                None => PersistConfig::every(1).without_compaction(),
            };
            let store = PersistStore::new(2);
            let opts = lots_opts(2, 1 << 20, false, persist).with_persist_store(store.clone());
            let s = Arc::clone(&script);
            let (r, _) = run_cluster(opts, move |dsm| run_script(dsm, &s));
            (r, store.restore().expect("journals restore"))
        };
        let (r_plain, plain) = run(None);
        let (r_compact, compact) = run(Some(eager));
        prop_assert_eq!(r_plain, r_compact);
        prop_assert_eq!(plain.checkpoint_seq, compact.checkpoint_seq);
        for (a, b) in plain.nodes.iter().zip(compact.nodes.iter()) {
            prop_assert_eq!(&a.dir, &b.dir, "node {} directory", a.me);
            prop_assert_eq!(&a.names, &b.names, "node {} names", a.me);
            prop_assert_eq!(&a.objects, &b.objects, "node {} masters", a.me);
        }
    }
}

/// The parallel engine must restore exactly like the sequential one:
/// same journals in, same verified replay out.
#[test]
fn parallel_restore_equals_deterministic_restore() {
    let kernel = |dsm: &lots::core::Dsm| {
        let a = dsm.alloc::<i64>(512);
        let per = 512 / dsm.n();
        for i in 0..per {
            a.write(dsm.me() * per + i, (dsm.me() * per + i) as i64 * 7);
        }
        dsm.barrier();
        let s: i64 = a.read_vec(0, 512).iter().sum();
        dsm.barrier();
        s
    };
    let store = PersistStore::new(4);
    let opts =
        lots_opts(4, 1 << 20, false, PersistConfig::every(1)).with_persist_store(store.clone());
    let (r0, rep0) = run_cluster(opts, kernel);
    let restored = Arc::new(store.restore().expect("journals restore"));
    let (r1, rep1) = restore_cluster(
        Arc::clone(&restored),
        lots_opts(4, 1 << 20, false, PersistConfig::every(1)),
        kernel,
    );
    let (r2, rep2) = restore_cluster(
        Arc::clone(&restored),
        lots_opts(4, 1 << 20, false, PersistConfig::every(1))
            .with_scheduler(SchedulerMode::Parallel { workers: 4 }),
        kernel,
    );
    assert_eq!(r0, r1);
    assert_eq!(r1, r2, "parallel replay must compute the same values");
    assert_eq!(
        lots_fingerprint(&rep1),
        lots_fingerprint(&rep2),
        "parallel restore must be byte-identical to the sequential one"
    );
    assert_eq!(lots_fingerprint(&rep0), lots_fingerprint(&rep1));
}

/// Restore stays exact under a seeded lossy fault plan on the other
/// two systems as well (the `checkpoint_restore` example covers LOTS
/// with the full cocktail): LOTS-x takes loss + duplication +
/// reordering + a healing partition + a crash-rejoin; JIAJIA takes the
/// same minus the crash (it has no rejoin protocol).
#[test]
fn lossy_restore_replay_on_lots_x_and_jiajia() {
    fn kernel<D: DsmApi>(dsm: &D) -> u64 {
        let a = dsm.alloc::<i32>(256);
        let per = 256 / dsm.n();
        for round in 0..6i32 {
            for i in 0..per {
                a.write(dsm.me() * per + i, round * 1000 + i as i32);
            }
            dsm.barrier();
        }
        a.read_vec(0, 256)
            .iter()
            .fold(0u64, |acc, v| acc.wrapping_mul(31).wrapping_add(*v as u64))
    }
    let lossy = lots::sim::FaultPlan {
        seed: 77,
        loss_permille: 20,
        dup_permille: 30,
        reorder_permille: 25,
        partitions: vec![lots::sim::Partition {
            start: lots::sim::SimInstant(200_000),
            end: lots::sim::SimInstant(600_000),
            islanders: vec![2],
        }],
        ..lots::sim::FaultPlan::none()
    };
    let with_crash = lots::sim::FaultPlan {
        crash_node: Some(lots::sim::CrashFault {
            node: 1,
            at_barrier: 3,
            reboot: lots::sim::SimDuration::from_millis(5),
        }),
        ..lossy.clone()
    };

    let store = PersistStore::new(3);
    let opts = lots_opts(3, 16 * 1024, true, PersistConfig::every(2))
        .with_persist_store(store.clone())
        .with_faults(with_crash.clone());
    let (r1, rep1) = run_cluster(opts, kernel);
    assert!(
        rep1.nodes
            .iter()
            .any(|n| n.traffic.msgs_retransmitted() > 0),
        "the plan must exercise loss"
    );
    let restored = store
        .restore()
        .expect("LOTS-x journals restore under faults");
    let (r2, rep2) = restore_cluster(
        Arc::new(restored),
        lots_opts(3, 16 * 1024, true, PersistConfig::every(2)).with_faults(with_crash),
        kernel,
    );
    assert_eq!(r1, r2, "LOTS-x faulted replay diverged");
    assert_eq!(lots_fingerprint(&rep1), lots_fingerprint(&rep2));

    let store = PersistStore::new(3);
    let opts = JiaOptions::new(3, 4 << 20, p4_fedora())
        .with_persist(PersistConfig::every(2))
        .with_persist_store(store.clone())
        .with_faults(lossy.clone());
    let (j1, jrep1) = run_jiajia_cluster(opts, kernel);
    let restored = store
        .restore()
        .expect("JIAJIA journals restore under faults");
    let (j2, jrep2) = restore_jiajia_cluster(
        Arc::new(restored),
        JiaOptions::new(3, 4 << 20, p4_fedora())
            .with_persist(PersistConfig::every(2))
            .with_faults(lossy),
        kernel,
    );
    assert_eq!(j1, j2, "JIAJIA faulted replay diverged");
    assert_eq!(jia_fingerprint(&jrep1), jia_fingerprint(&jrep2));
}

/// A torn final record (simulated crash mid-append) must cost at most
/// the unsealed tail: restore falls back to the last complete
/// checkpoint and the replay re-verifies everything before it.
#[test]
fn torn_tail_falls_back_to_last_sealed_checkpoint() {
    let kernel = |dsm: &lots::core::Dsm| {
        let a = dsm.alloc::<i64>(256);
        for round in 0..4u64 {
            a.write(dsm.me(), round as i64 + 1);
            dsm.barrier();
        }
        a.read(0) + a.read(1)
    };
    let store = PersistStore::new(2);
    let opts =
        lots_opts(2, 1 << 20, false, PersistConfig::every(2)).with_persist_store(store.clone());
    let (r1, _) = run_cluster(opts, kernel);
    let intact = store.restore().expect("intact restore");
    assert_eq!(intact.checkpoint_seq, 4);
    // Chop bytes off node 0's log one step at a time. Restorability
    // must be monotone in the prefix length: before the first sealed
    // manifest survives the cut, restore fails cleanly; from then on
    // every longer prefix restores to a sealed checkpoint (2 or 4) and
    // replays to the original result.
    let full = store.log_bytes(0) as usize;
    let mut restored_once = false;
    for cut in (0..=full).step_by(97).chain([full]) {
        let torn = store.fork();
        torn.truncate_tail(0, cut);
        match torn.restore() {
            Ok(restored) => {
                restored_once = true;
                assert!(
                    restored.checkpoint_seq == 2 || restored.checkpoint_seq == 4,
                    "cut {cut}: checkpoint {} is not a sealed one",
                    restored.checkpoint_seq
                );
                let (r2, _) = restore_cluster(
                    Arc::new(restored),
                    lots_opts(2, 1 << 20, false, PersistConfig::every(2)),
                    kernel,
                );
                assert_eq!(r1, r2, "cut {cut}: replay diverged");
            }
            Err(e) => {
                // Acceptable only before the first checkpoint manifest
                // fits inside the prefix — never after one restored.
                assert!(
                    !restored_once,
                    "cut {cut} of {full} regressed to unrestorable: {e:?}"
                );
            }
        }
    }
    assert!(restored_once, "no prefix ever restored");
}
