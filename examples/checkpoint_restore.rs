//! Kill a cluster mid-run, restore it from its journals, replay —
//! and get the uninterrupted run's answers, bit for bit.
//!
//! The object-churn workload runs on a 4-node LOTS cluster with the
//! persistence subsystem on (`EveryNBarriers(4)` checkpoints) under
//! the full lossy-network cocktail: seeded loss, duplication and
//! reordering, a healing minority partition, and one crash-rejoin.
//! A second run adds a fatal mid-run kill (one node panics entering a
//! barrier); its journals — torn off at the kill — are then restored
//! to the newest cluster-complete checkpoint and replayed. The replay
//! verifies every sealed state digest and virtual clock barrier by
//! barrier, and must finish with checksums, virtual times and traffic
//! **byte-identical** to the uninterrupted run — under both the
//! sequential `Deterministic` engine and the conservative `Parallel`
//! engine.
//!
//! ```text
//! cargo run --release --example checkpoint_restore
//! LOTS_SMOKE=1 cargo run --release --example checkpoint_restore   # CI job
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use lots::apps::churn::{model_checksum, run_churn, ChurnParams};
use lots::core::{
    restore_cluster, run_cluster, ClusterOptions, ClusterReport, Dsm, LotsConfig, PersistConfig,
    PersistStore, SchedulerMode,
};
use lots::sim::machine::p4_fedora;
use lots::sim::{CrashFault, FaultPlan, PanicFault, Partition, SimDuration, SimInstant};

const NODES: usize = 4;

/// The barrier whose entry kills node 2 in the interrupted run. Late
/// enough that the crash-rejoin (barrier 6) has healed and at least
/// two checkpoints (barriers 4 and 8) have sealed on every node.
const KILL_BARRIER: u64 = 11;

/// Seeded loss + dup + reorder, one healing minority partition, one
/// recoverable crash-rejoin — the lossy-network cocktail the restore
/// must be exact under. The crash lands after the first checkpoint
/// (barrier 4) so the rejoining node has journal bytes pinned on its
/// own disk to rebuild masters from.
fn plan() -> FaultPlan {
    FaultPlan {
        seed: 1234,
        loss_permille: 15,
        dup_permille: 30,
        reorder_permille: 25,
        partitions: vec![Partition {
            start: SimInstant(2_000_000),
            end: SimInstant(8_000_000),
            islanders: vec![3],
        }],
        crash_node: Some(CrashFault {
            node: 1,
            at_barrier: 6,
            reboot: SimDuration::from_millis(25),
        }),
        ..FaultPlan::none()
    }
}

fn opts(store: Option<PersistStore>, faults: FaultPlan) -> ClusterOptions {
    let lots = LotsConfig::small(1 << 20).with_persist(PersistConfig::every(4));
    let mut o = ClusterOptions::new(NODES, lots, p4_fedora()).with_faults(faults);
    if let Some(s) = store {
        o = o.with_persist_store(s);
    }
    o
}

/// Everything that must replay bit for bit: per-node virtual time,
/// traffic, consistency work, and the recovery + journal counters.
fn fingerprint(report: &ClusterReport) -> String {
    report
        .nodes
        .iter()
        .map(|n| {
            format!(
                "{}:{}:{}:{}:{}:{}:{}:{};",
                n.me,
                n.time.nanos(),
                n.traffic.bytes_sent(),
                n.traffic.msgs_sent(),
                n.stats.access_checks(),
                n.stats.rejoin_log_bytes(),
                n.stats.rejoin_peer_bytes(),
                n.stats.log_records(),
            )
        })
        .collect()
}

fn main() {
    let smoke = std::env::var("LOTS_SMOKE").is_ok_and(|v| v == "1");
    let params = if smoke {
        ChurnParams::smoke()
    } else {
        ChurnParams {
            phases: 96,
            ..ChurnParams::smoke()
        }
    };
    let model = model_checksum(&params, 0);
    let kernel = move |dsm: &Dsm| run_churn(dsm, &params).checksum;

    // 1. The uninterrupted run: churn through the full fault cocktail
    //    with the journal on. Its answers are the bar the restore must
    //    clear exactly.
    let base_store = PersistStore::new(NODES);
    let (base, base_report) = run_cluster(opts(Some(base_store.clone()), plan()), kernel);
    for (node, c) in base.iter().enumerate() {
        assert_eq!(*c, model, "node {node} checksum vs the sequential model");
    }
    let rejoin_log: u64 = base_report
        .nodes
        .iter()
        .map(|n| n.stats.rejoin_log_bytes())
        .sum();
    let log_bytes: u64 = base_report
        .nodes
        .iter()
        .map(|n| n.stats.log_bytes_appended())
        .sum();
    let checkpoints: u64 = base_report
        .nodes
        .iter()
        .map(|n| n.stats.checkpoint_bytes())
        .sum();
    assert!(
        rejoin_log > 0,
        "the rejoin must rebuild masters from its own journal"
    );
    assert!(checkpoints > 0, "EveryNBarriers(4) must seal checkpoints");
    println!(
        "uninterrupted: {} phases in {:.3} s, {} journal B appended \
         ({} B of manifests), rejoin read {} B from its own log",
        params.phases,
        base_report.exec_time.as_secs_f64(),
        log_bytes,
        checkpoints,
        rejoin_log,
    );

    // 2. The same run, killed: node 2 panics entering barrier
    //    KILL_BARRIER, poisoning the whole cluster. The journals in
    //    `killed_store` survive the wreck.
    let killed_store = PersistStore::new(NODES);
    let mut kopts = opts(Some(killed_store.clone()), plan());
    kopts.faults.panic_node = Some(PanicFault {
        node: 2,
        at_barrier: KILL_BARRIER,
    });
    // Silence the (intentional) kill's panic chatter; the threads it
    // poisons would otherwise each print a backtrace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let wreck = catch_unwind(AssertUnwindSafe(|| run_cluster(kopts, kernel)));
    std::panic::set_hook(prev_hook);
    assert!(wreck.is_err(), "the kill must abort the run");
    println!(
        "killed: node 2 died entering barrier {KILL_BARRIER}; journals hold {} B",
        (0..NODES).map(|i| killed_store.log_bytes(i)).sum::<u64>(),
    );

    // 3. Cold-start restore from the wreck's journals, then replay
    //    under both engines. Every sealed digest and clock is
    //    re-verified during the replay; the final answers and the full
    //    report fingerprint must equal the uninterrupted run's.
    let base_print = fingerprint(&base_report);
    for (label, engine) in [
        ("Deterministic", SchedulerMode::Deterministic),
        ("Parallel{4}", SchedulerMode::Parallel { workers: 4 }),
    ] {
        let restored = killed_store.restore().expect("journals restore");
        assert!(
            restored.checkpoint_seq >= 4 && restored.checkpoint_seq.is_multiple_of(4),
            "checkpoint {} is not a sealed multiple of 4",
            restored.checkpoint_seq
        );
        let checkpoint_seq = restored.checkpoint_seq;
        let (replayed, report) = restore_cluster(
            Arc::new(restored),
            opts(None, plan()).with_scheduler(engine),
            kernel,
        );
        assert_eq!(base, replayed, "{label}: replay answers diverged");
        assert_eq!(
            base_print,
            fingerprint(&report),
            "{label}: replay fingerprint diverged"
        );
        let replayed_barriers: u64 = report
            .nodes
            .iter()
            .map(|n| n.stats.restore_replay_barriers())
            .sum();
        assert!(
            replayed_barriers > 0,
            "{label}: barriers beyond checkpoint {checkpoint_seq} must count as replayed"
        );
        println!(
            "restore [{label}]: checkpoint {checkpoint_seq}, {} barrier-intervals replayed \
             — answers and fingerprint identical",
            replayed_barriers,
        );
    }
    println!("killed, restored, replayed: bit-identical to the uninterrupted run.");
}
