//! The headline feature: a shared object space larger than the DMM
//! area, backed by the local disk (a miniature Table 1 / §4.3 run).
//!
//! Four nodes share 256 MB of objects through 16 MB DMM arenas — 16×
//! more data than fits — with a real file-backed swap store. Every row
//! is written, swapped out, and read back; the checksum proves data
//! integrity through the disk round trip.
//!
//! ```text
//! cargo run --release --example large_object_space
//! ```

use std::sync::Arc;

use lots::apps::largeobj::{expected_sum, large_object_test, LargeObjParams};
use lots::core::{run_cluster, ClusterOptions, LotsConfig};
use lots::disk::FileStore;
use lots::sim::machine::p4_fedora;

fn main() {
    const NODES: usize = 4;
    let params = LargeObjParams {
        rows: 256,
        row_elems: 256 * 1024, // 1 MB rows → 256 MB of shared objects
    };
    let machine = p4_fedora();
    let disk = machine.disk;

    println!(
        "allocating {:.0} MB of shared objects against {} MB DMM arenas…",
        params.total_bytes() as f64 / 1e6,
        16
    );
    let opts = ClusterOptions::new(NODES, LotsConfig::small(16 << 20), machine)
        // Real files in a temp spool directory — the paper's mechanism.
        .with_stores(move |node| {
            Arc::new(FileStore::temp(disk).unwrap_or_else(|e| panic!("node {node} spool: {e}")))
        });
    let (results, report) = run_cluster(opts, move |dsm| {
        large_object_test(dsm, params).expect("large-object run")
    });

    let total: i64 = results.iter().map(|r| r.sum).sum();
    assert_eq!(
        total,
        expected_sum(params),
        "swap round trip corrupted data"
    );
    let swaps_out: u64 = results.iter().map(|r| r.swaps_out).sum();
    let swaps_in: u64 = results.iter().map(|r| r.swaps_in).sum();
    println!("checksum OK: {total}");
    println!(
        "virtual time {:.1} s (disk share {:.1} s on the slowest node)",
        report.exec_time.as_secs_f64(),
        results
            .iter()
            .map(|r| r.disk_time)
            .max()
            .expect("nodes")
            .as_secs_f64()
    );
    println!("{swaps_out} swap-outs / {swaps_in} swap-ins through real files");
    assert!(
        swaps_out > 0,
        "the object space exceeded the DMM area, so swapping must occur"
    );
}
