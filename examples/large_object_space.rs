//! The headline feature: a shared object space larger than the DMM
//! area, backed by the local disk (a miniature Table 1 / §4.3 run).
//!
//! Four nodes share 256 MB of objects through 16 MB DMM arenas — 16×
//! more data than fits — with a real file-backed swap store. Every row
//! is written, swapped out, and read back; the checksum proves data
//! integrity through the disk round trip.
//!
//! The run executes twice: once over the pre-overhaul swap path
//! (linear-scan LRU, one victim per trip, verbatim images) and once
//! over the tuned subsystem (pin-aware segmented LRU, 8-victim batched
//! write-behind, stride read-ahead, RLE-compressed images). Both must
//! produce the same checksum; the tuned run must be faster in virtual
//! time and write fewer bytes to disk.
//!
//! ```text
//! cargo run --release --example large_object_space
//! LOTS_SMOKE=1 cargo run --release --example large_object_space   # CI tiny-arena job
//! ```

use std::sync::Arc;

use lots::apps::largeobj::{expected_sum, large_object_test, LargeObjOutcome, LargeObjParams};
use lots::core::{run_cluster, ClusterOptions, LotsConfig, SwapConfig};
use lots::disk::FileStore;
use lots::sim::machine::p4_fedora;
use lots::sim::SimInstant;

struct RunSummary {
    exec_time: SimInstant,
    results: Vec<LargeObjOutcome>,
}

fn run(params: LargeObjParams, dmm_bytes: usize, swap: SwapConfig, nodes: usize) -> RunSummary {
    let machine = p4_fedora();
    let disk = machine.disk;
    let opts = ClusterOptions::new(nodes, LotsConfig::small(dmm_bytes).with_swap(swap), machine)
        // Real files in a temp spool directory — the paper's mechanism.
        .with_stores(move |node| {
            Arc::new(FileStore::temp(disk).unwrap_or_else(|e| panic!("node {node} spool: {e}")))
        });
    let (results, report) = run_cluster(opts, move |dsm| {
        let out = large_object_test(dsm, params).expect("large-object run");
        // §3.3 invariant: every materialized byte is resident or swapped.
        let acct = dsm.swap_accounting();
        assert_eq!(
            acct.resident_logical + acct.swapped_logical,
            acct.materialized,
            "resident + swapped must equal the materialized bytes"
        );
        out
    });
    RunSummary {
        exec_time: report.exec_time,
        results,
    }
}

fn main() {
    // LOTS_SMOKE=1: the CI tiny-arena job — 8 MB of objects through
    // 1 MB DMMs (8× overcommit), small enough to finish in a blink.
    let smoke = std::env::var("LOTS_SMOKE").is_ok_and(|v| v == "1");
    const NODES: usize = 4;
    let (params, dmm) = if smoke {
        (
            LargeObjParams {
                rows: 128,
                row_elems: 16 * 1024, // 64 KB rows → 8 MB of shared objects
            },
            1 << 20,
        )
    } else {
        (
            LargeObjParams {
                rows: 256,
                row_elems: 256 * 1024, // 1 MB rows → 256 MB of shared objects
            },
            16 << 20,
        )
    };

    println!(
        "allocating {:.0} MB of shared objects against {} MB DMM arenas…",
        params.total_bytes() as f64 / 1e6,
        dmm >> 20,
    );
    let legacy = run(params, dmm, SwapConfig::legacy(), NODES);
    let tuned = run(params, dmm, SwapConfig::tuned(), NODES);

    for (label, summary) in [("legacy LRU", &legacy), ("tuned", &tuned)] {
        let total: i64 = summary.results.iter().map(|r| r.sum).sum();
        assert_eq!(total, expected_sum(params), "{label}: swap corrupted data");
        let swaps_out: u64 = summary.results.iter().map(|r| r.swaps_out).sum();
        let swaps_in: u64 = summary.results.iter().map(|r| r.swaps_in).sum();
        let out_bytes: u64 = summary.results.iter().map(|r| r.swap_out_bytes).sum();
        let batches: u64 = summary.results.iter().map(|r| r.swap_batches).sum();
        let prefetch: u64 = summary.results.iter().map(|r| r.prefetch_hits).sum();
        let disk_share = summary
            .results
            .iter()
            .map(|r| r.disk_time)
            .max()
            .expect("nodes");
        println!("— {label} —");
        println!(
            "  virtual time {:.3} s (disk share {:.3} s on the slowest node), checksum OK: {total}",
            summary.exec_time.as_secs_f64(),
            disk_share.as_secs_f64(),
        );
        println!(
            "  {swaps_out} swap-outs / {swaps_in} swap-ins, {:.2} MB written in {batches} \
             batched trips, {prefetch} read-ahead hits",
            out_bytes as f64 / 1e6,
        );
        assert!(
            swaps_out > 0,
            "the object space exceeded the DMM area, so swapping must occur"
        );
    }

    let legacy_out: u64 = legacy.results.iter().map(|r| r.swap_out_bytes).sum();
    let tuned_out: u64 = tuned.results.iter().map(|r| r.swap_out_bytes).sum();
    assert!(
        tuned.exec_time < legacy.exec_time,
        "tuned swap subsystem must beat the legacy path ({} vs {})",
        tuned.exec_time,
        legacy.exec_time
    );
    assert!(
        tuned_out < legacy_out,
        "compression must shrink swap-out bytes ({tuned_out} vs {legacy_out})"
    );
    println!(
        "tuned subsystem: {:.1}× faster, {:.1}× fewer swap-out bytes",
        legacy.exec_time.as_secs_f64() / tuned.exec_time.as_secs_f64(),
        legacy_out as f64 / tuned_out as f64,
    );
}
