//! LOTS vs JIAJIA head-to-head on SOR — one Figure 8(c) point with the
//! full causal story: execution time, traffic, faults, and where the
//! virtual time went on each system.
//!
//! ```text
//! cargo run --release --example sor_showdown
//! ```

use lots::apps::runner::{run_app, RunConfig, System};
use lots::apps::sor::{sor_sequential, SorParams};
use lots::sim::machine::p4_fedora;

fn main() {
    let params = SorParams { n: 256, iters: 32 };
    let p = 4;
    let expected = sor_sequential(params);

    println!(
        "SOR red-black, grid {0}x{0}, {1} iterations, p = {p}",
        params.n, params.iters
    );
    println!();
    for system in [System::Jiajia, System::Lots, System::LotsX] {
        let cfg = RunConfig::new(system, p, p4_fedora());
        let out = run_app(&cfg, params);
        assert_eq!(
            out.combined.checksum,
            expected,
            "{} diverged",
            system.label()
        );
        println!(
            "{:<7}  {:>8.3} s   {:>8.2} MB traffic   {:>9} faults   {:>11} checks",
            system.label(),
            out.combined.elapsed.as_secs_f64(),
            out.bytes_sent as f64 / 1e6,
            out.page_faults,
            out.access_checks,
        );
        println!(
            "         network {:>7.3} s | sync {:>7.3} s | checks {:>7.3} s | compute {:>7.3} s (summed over nodes)",
            out.time_network.as_secs_f64(),
            out.time_sync.as_secs_f64(),
            out.time_access_check.as_secs_f64() + out.time_large_object.as_secs_f64(),
            out.time_compute.as_secs_f64(),
        );
    }
    println!();
    println!("why LOTS wins here (§4.1): every row is a single-writer object, so");
    println!("the migrating-home protocol makes each slice home-local after the");
    println!("first barrier, while the page-based baseline keeps flushing diffs to");
    println!("round-robin homes and refetching falsely-shared boundary pages.");
}
