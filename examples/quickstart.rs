//! Quickstart: the paper's programming model in one file.
//!
//! A four-node LOTS cluster shares an array and a counter. The array is
//! partitioned and synchronized with barriers (migrating-home
//! write-invalidate); the counter is guarded by a lock (homeless
//! write-update). `Pointer<T>`-style pointer arithmetic (`*(a+4)=1`,
//! §3.3) works through [`SharedSlice::offset`].
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! [`SharedSlice::offset`]: lots::core::DsmSlice::offset

use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
use lots::sim::machine::p4_fedora;

fn main() {
    const NODES: usize = 4;
    const LEN: usize = 1024;

    let opts = ClusterOptions::new(NODES, LotsConfig::small(4 << 20), p4_fedora());
    let (results, report) = run_cluster(opts, |dsm| {
        // Declare shared objects — every node performs the same
        // allocations, which is what makes the object IDs agree
        // (the paper's `Pointer<int> iptr; iptr.alloc(...)`).
        let data = dsm.alloc::<i64>(LEN);
        let counter = dsm.alloc::<i64>(1);

        // Each node fills its slice, then a barrier publishes the
        // writes (single-writer slices migrate their home here).
        let per = LEN / dsm.n();
        let base = dsm.me() * per;
        for i in 0..per {
            data.write(base + i, (base + i) as i64);
        }
        dsm.barrier();

        // Pointer arithmetic on a shared object, as in `*(a+4) = 1`.
        let shifted = data.offset(4);
        assert_eq!(shifted.read(0), 4);

        // A lock-guarded reduction: Scope Consistency makes each
        // critical section's updates visible to the next acquirer.
        let mut local = 0i64;
        for i in 0..per {
            local += data.read(base + i);
        }
        dsm.with_lock(1, || counter.update(0, |v| v + local));
        dsm.barrier();

        // Everyone sees the total after the barrier.
        counter.read(0)
    });

    let expect: i64 = (0..LEN as i64).sum();
    println!("global sum on every node: {:?}", results);
    assert!(results.iter().all(|&s| s == expect));
    println!(
        "virtual execution time: {:.3} ms across {} nodes",
        report.exec_time.as_secs_f64() * 1e3,
        NODES
    );
    for node in &report.nodes {
        println!(
            "  node {}: {} access checks, {} B sent [{}]",
            node.me,
            node.stats.access_checks(),
            node.traffic.bytes_sent(),
            node.stats.breakdown()
        );
    }
}
