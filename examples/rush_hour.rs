//! State-space search over the shared object space — the workload class
//! the paper's introduction motivates ("a full analysis of all possible
//! moves in a Weiqi game…, or an optimal solution to the Rush Hour
//! problem": state spaces too large for one machine's memory).
//!
//! A 4-node LOTS cluster runs distributed breadth-first search over the
//! full 8-puzzle state graph (181 440 reachable states, diameter 31):
//! the visited table is sharded across owner nodes, frontier states are
//! routed through single-writer shared queues, and the DMM arena is
//! deliberately small so the search's tables live mostly on disk —
//! exactly how LOTS would host a state space bigger than RAM.
//!
//! ```text
//! cargo run --release --example rush_hour
//! ```

use lots::core::{run_cluster, ClusterOptions, Dsm, DsmApi, DsmSlice, LotsConfig, SharedSlice};
use lots::sim::machine::p4_fedora;

const NODES: usize = 4;
/// 9! permutations of the 3×3 board.
const STATES: usize = 362_880;
/// Per-(src,dst) routing queue capacity (slot 0 is the length).
const QCAP: usize = 40_000;

/// Lehmer rank of a 9-cell board (0 = blank).
fn rank(board: &[u8; 9]) -> u32 {
    let mut r = 0u32;
    let mut fact = 40_320u32; // 8!
    let mut seen = [false; 9];
    for (i, &c) in board.iter().enumerate() {
        let smaller = (0..c).filter(|&x| !seen[x as usize]).count() as u32;
        r += smaller * fact;
        seen[c as usize] = true;
        if i < 8 {
            fact /= (8 - i) as u32;
        }
    }
    r
}

/// Inverse of [`rank`].
fn unrank(mut r: u32) -> [u8; 9] {
    let mut avail: Vec<u8> = (0..9).collect();
    let mut board = [0u8; 9];
    let mut fact = 40_320u32;
    for (i, cell) in board.iter_mut().enumerate() {
        let idx = (r / fact) as usize;
        r %= fact;
        *cell = avail.remove(idx);
        if i < 8 {
            fact /= (8 - i) as u32;
        }
    }
    board
}

/// Successor states (blank slides up/down/left/right).
fn successors(state: u32) -> Vec<u32> {
    let board = unrank(state);
    let blank = board.iter().position(|&c| c == 0).expect("blank") as i32;
    let (br, bc) = (blank / 3, blank % 3);
    let mut out = Vec::with_capacity(4);
    for (dr, dc) in [(-1i32, 0i32), (1, 0), (0, -1), (0, 1)] {
        let (nr, nc) = (br + dr, bc + dc);
        if (0..3).contains(&nr) && (0..3).contains(&nc) {
            let mut next = board;
            next.swap(blank as usize, (nr * 3 + nc) as usize);
            out.push(rank(&next));
        }
    }
    out
}

fn owner(state: u32) -> usize {
    (state as usize / 8) % NODES
}

fn bfs_node(dsm: &Dsm) -> (u64, usize) {
    let me = dsm.me();
    // Visited bitmaps: one shard object per owner (only the owner
    // writes its shard, so barriers merge nothing).
    let shards: Vec<SharedSlice<'_, u32>> = (0..NODES)
        .map(|_| dsm.alloc::<u32>(STATES / 32 + 1))
        .collect();
    // Routing queues: queue[src][dst] is written by src in one interval
    // and drained by dst in the next (single-writer alternation).
    let queues: Vec<Vec<SharedSlice<'_, u32>>> = (0..NODES)
        .map(|_| (0..NODES).map(|_| dsm.alloc::<u32>(QCAP)).collect())
        .collect();

    let root = rank(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    let mut frontier: Vec<u32> = Vec::new();
    if owner(root) == me {
        frontier.push(root);
    }
    let mut visited_local = vec![false; STATES]; // mirror of my shard
    let mut total = 0u64;
    let mut depth = 0usize;

    loop {
        // Mark and expand my frontier; route successors to their owners.
        let mut outbound: Vec<Vec<u32>> = vec![Vec::new(); NODES];
        for &s in &frontier {
            debug_assert_eq!(owner(s), me);
            if visited_local[s as usize] {
                continue;
            }
            visited_local[s as usize] = true;
            shards[me].update((s / 32) as usize, |w| w | (1 << (s % 32)));
            total += 1;
            for succ in successors(s) {
                outbound[owner(succ)].push(succ);
            }
            dsm.charge_compute(8);
        }
        for (dst, states) in outbound.iter().enumerate() {
            assert!(states.len() < QCAP, "routing queue overflow");
            let q = &queues[me][dst];
            q.write(0, states.len() as u32);
            q.write_from(1, states);
        }
        dsm.barrier();

        // Drain queues addressed to me; de-duplicate against my shard.
        frontier.clear();
        for row in queues.iter().take(NODES) {
            let q = &row[me];
            let len = q.read(0) as usize;
            for s in q.read_vec(1, len) {
                if !visited_local[s as usize] {
                    frontier.push(s);
                }
            }
            q.write(0, 0);
        }
        frontier.sort_unstable();
        frontier.dedup();
        // Global termination: does anyone still have work? A fresh flag
        // object per round (allocated by every node, keeping IDs in
        // step); concurrent writers all store the same word value.
        let work = dsm.alloc::<u32>(1);
        if !frontier.is_empty() {
            work.write(0, 1);
        }
        dsm.barrier();
        if work.read(0) == 0 {
            break;
        }
        depth += 1;
    }
    (total, depth)
}

fn main() {
    // A 1 MB DMM arena: the visited shards and queues (≈ 3 MB) cannot
    // all stay mapped, so the search continually swaps its tables.
    let opts = ClusterOptions::new(NODES, LotsConfig::small(1 << 20), p4_fedora());
    let (results, report) = run_cluster(opts, bfs_node);

    let total: u64 = results.iter().map(|&(t, _)| t).sum();
    let depth = results[0].1;
    println!("reachable 8-puzzle states: {total} (expected 181440)");
    println!("BFS rounds to exhaustion:  {depth} (expected diameter 31)");
    assert_eq!(total, 181_440);
    assert_eq!(depth, 31);
    let swaps: u64 = report.nodes.iter().map(|n| n.stats.swaps_out()).sum();
    println!(
        "virtual time {:.2} s; {swaps} swap-outs kept the state space on disk",
        report.exec_time.as_secs_f64()
    );
    assert!(swaps > 0, "the point of the example is disk-backed state");
}
