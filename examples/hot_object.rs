//! Hot object: the single-home bottleneck benchmark. One large named
//! object is hammered by every node at once — rotating writers rewrite
//! their chunk while all nodes bulk-read a rotating cold chunk — and
//! the same workload runs twice: **striped** (fixed-size segments with
//! per-segment homes, settled next to their writers by home
//! migration) and **single-home** (every segment pinned at node 0,
//! migration off — the classic one-object-one-home layout). Checksums
//! on both must match a sequential replay of the barrier-published
//! visibility model; the virtual read throughput shows why striping
//! exists.
//!
//! ```text
//! cargo run --release --example hot_object
//! LOTS_SMOKE=1 cargo run --release --example hot_object   # CI job
//! ```

use lots::apps::hotobj::{model_node_checksum, HotParams};
use lots::apps::{run_app, RunConfig, System};
use lots::core::{LotsConfig, Placement, Striping};
use lots::sim::machine::p4_fedora;

const NODES: usize = 8;
const SEED: u64 = 0;

fn run(params: HotParams, tweak: fn(&mut LotsConfig), dmm: usize) -> (f64, f64, u64, u64, u64) {
    let mut cfg = RunConfig::new(System::Lots, NODES, p4_fedora());
    cfg.dmm_bytes = dmm;
    cfg.seed = SEED;
    cfg.lots_tweak = tweak;
    let out = run_app(&cfg, params);
    for (me, r) in out.per_node.iter().enumerate() {
        assert_eq!(
            r.checksum,
            model_node_checksum(&params, SEED, NODES, me),
            "node {me} checksum vs sequential model"
        );
    }
    let secs = out.combined.elapsed.as_secs_f64();
    (
        secs,
        params.read_bytes() as f64 / secs / 1e6,
        out.home_load_ratio_permille,
        out.versions_published,
        out.versions_reclaimed,
    )
}

fn main() {
    let smoke = std::env::var("LOTS_SMOKE").is_ok_and(|v| v == "1");
    let (params, seg_bytes, dmm) = if smoke {
        // 16 MB object in 256 KB segments — the CI shape.
        (
            HotParams {
                elems: 2 << 20,
                rounds: 3,
                single_home: false,
            },
            256 << 10,
            16 << 20,
        )
    } else {
        (HotParams::bench(), 4 << 20, 448 << 20)
    };
    println!(
        "hot object: {} MB, {} nodes, {} rounds, {} KB segments",
        params.object_bytes() >> 20,
        NODES,
        params.rounds,
        seg_bytes >> 10,
    );

    // The striping knobs are compile-time constants here only because
    // `RunConfig::lots_tweak` is a plain fn pointer.
    let striped: fn(&mut LotsConfig) = if smoke {
        |c| c.striping = Some(Striping::segments_of(256 << 10))
    } else {
        |c| c.striping = Some(Striping::segments_of(4 << 20))
    };
    let single_home: fn(&mut LotsConfig) = if smoke {
        |c| {
            c.striping = Some(Striping {
                segment_bytes: 256 << 10,
                placement: Placement::Fixed(0),
            });
            c.home_migration = false;
        }
    } else {
        |c| {
            c.striping = Some(Striping {
                segment_bytes: 4 << 20,
                placement: Placement::Fixed(0),
            });
            c.home_migration = false;
        }
    };

    let (s_secs, s_mbps, s_ratio, published, reclaimed) = run(params, striped, dmm);
    assert!(published > 0, "striped writers must publish versions");
    assert!(reclaimed > 0, "superseded versions must be reclaimed");
    println!(
        "  striped     {s_secs:>8.3} s  {s_mbps:>9.1} MB/s read  home ratio {s_ratio}‰  \
         {published} versions published / {reclaimed} reclaimed"
    );

    let (b_secs, b_mbps, b_ratio, _, _) = run(
        HotParams {
            single_home: true,
            ..params
        },
        single_home,
        dmm,
    );
    println!("  single-home {b_secs:>8.3} s  {b_mbps:>9.1} MB/s read  home ratio {b_ratio}‰");
    assert_eq!(
        b_ratio,
        NODES as u64 * 1000,
        "the baseline must funnel every reply through node 0"
    );
    assert!(
        s_mbps >= 3.0 * b_mbps,
        "striping must beat the single home >= 3x: {s_mbps:.1} vs {b_mbps:.1} MB/s"
    );
    println!(
        "striping reads {:.1}x faster than the single home, checksums identical",
        s_mbps / b_mbps
    );
}
