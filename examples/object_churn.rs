//! Object lifecycle under churn: a rolling working set whose
//! **cumulative** allocation history dwarfs the fixed arena it runs
//! in — the dynamic-workload shape the alloc-once API could never
//! host. Address, slot and page reuse (free → tombstone →
//! barrier-wide reclamation) is what makes it fit; the checksum
//! (verified against a sequential model on every node) proves data
//! integrity through reuse, swap, named-directory churn and all three
//! placement policies, on LOTS, LOTS-x and JIAJIA alike.
//!
//! ```text
//! cargo run --release --example object_churn
//! LOTS_SMOKE=1 cargo run --release --example object_churn   # CI job
//! ```

use lots::apps::churn::{model_checksum, ChurnParams};
use lots::apps::{run_app, RunConfig, System};
use lots::sim::machine::p4_fedora;

const NODES: usize = 4;

fn main() {
    let smoke = std::env::var("LOTS_SMOKE").is_ok_and(|v| v == "1");
    let params = if smoke {
        ChurnParams::smoke()
    } else {
        ChurnParams {
            phases: 192,
            ..ChurnParams::smoke()
        }
    };
    // Arenas sized so the cumulative history overcommits each system
    // by at least 8×: LOTS swaps inside 1 MB, LOTS-x must keep the
    // live window permanently mapped in 2 MB, JIAJIA's shared space
    // is 2 MB of pages.
    let lots_dmm = 1 << 20;
    let lotsx_dmm = 2 << 20;
    let shared = 2 << 20;
    let model = model_checksum(&params, 0);
    let expected_freed_per_node =
        ((params.phases - params.retain) * params.objs_per_phase + params.phases - 1) as u64;

    println!(
        "churn: {} phases × {} objects of {} KB (+1 named checkpoint/phase), window {}",
        params.phases,
        params.objs_per_phase,
        params.elems * 4 / 1024,
        params.retain,
    );
    println!(
        "cumulative allocations {:.1} MB ({} objects), peak live {:.2} MB",
        params.cumulative_bytes() as f64 / 1e6,
        params.total_allocations(),
        params.peak_live_bytes() as f64 / 1e6,
    );

    for (system, arena) in [
        (System::Lots, lots_dmm),
        (System::LotsX, lotsx_dmm),
        (System::Jiajia, shared),
    ] {
        let mut cfg = RunConfig::new(system, NODES, p4_fedora());
        cfg.dmm_bytes = arena;
        cfg.shared_bytes = shared;
        let out = run_app(&cfg, params);
        let overcommit = params.cumulative_bytes() as f64 / arena as f64;
        assert!(
            overcommit >= 8.0,
            "{}: cumulative history must overcommit the arena ≥ 8×, got {overcommit:.1}×",
            system.label()
        );
        for (node, r) in out.per_node.iter().enumerate() {
            assert_eq!(
                r.checksum,
                model,
                "{} node {node}: churn checksum diverged from the sequential model",
                system.label()
            );
        }
        assert_eq!(
            out.objects_freed,
            expected_freed_per_node * NODES as u64,
            "{}: every retired generation and checkpoint reclaims on every node",
            system.label()
        );
        println!(
            "— {} ({:.1}× overcommit of {} KB) —",
            system.label(),
            overcommit,
            arena / 1024
        );
        println!(
            "  virtual time {:.3} s, checksum OK, {} frees/node",
            out.combined.elapsed.as_secs_f64(),
            expected_freed_per_node,
        );
        match system {
            System::Lots => {
                assert!(
                    out.swaps_out > 0,
                    "the 1 MB arena must force swapping under churn"
                );
                // Control space is reused, not grown: the slot table
                // stays at working-set size while the cumulative
                // history is hundreds of allocations.
                let slot_bound = (params.retain + 2) * params.objs_per_phase + 8;
                assert!(
                    out.object_slots_max <= slot_bound,
                    "slot table grew past the working set: {} > {slot_bound}",
                    out.object_slots_max
                );
                println!(
                    "  {} swap-outs / {} swap-ins, {} object-table slots for {} cumulative \
                     allocations, exit fragmentation {}‰",
                    out.swaps_out,
                    out.swaps_in,
                    out.object_slots_max,
                    params.total_allocations(),
                    out.frag_permille_max,
                );
            }
            System::LotsX => {
                assert_eq!(out.swaps_out, 0, "LOTS-x never swaps");
                println!(
                    "  fits permanently mapped only through address reuse \
                     ({} slots, exit fragmentation {}‰)",
                    out.object_slots_max, out.frag_permille_max,
                );
            }
            System::Jiajia => {
                println!("  page-granular reuse, {} page faults", out.page_faults);
            }
        }
    }
    println!("all three systems agree with the sequential model: {model:#x}");
}
