//! Partition, heal, crash, rejoin — and the application never notices.
//!
//! One seeded fault plan throws everything the network model has at a
//! 4-node LOTS cluster: per-message loss, duplication and reordering,
//! a scheduled minority partition that heals mid-run, and one node
//! crashing after a barrier and rejoining through the recovery
//! protocol. SOR and the object-churn program must finish with
//! checksums **byte-identical** to the fault-free run — under both the
//! sequential `Deterministic` engine and the conservative `Parallel`
//! engine — and replaying the same plan must reproduce every virtual
//! time and recovery counter bit for bit.
//!
//! ```text
//! cargo run --release --example partition_rejoin
//! LOTS_SMOKE=1 cargo run --release --example partition_rejoin   # CI job
//! ```

use lots::apps::churn::{model_checksum, ChurnParams};
use lots::apps::runner::RunOutcome;
use lots::apps::sor::SorParams;
use lots::apps::{run_app, RunConfig, System};
use lots::core::SchedulerMode;
use lots::sim::machine::p4_fedora;
use lots::sim::{CrashFault, FaultPlan, Partition, SimDuration, SimInstant};

const NODES: usize = 4;

/// Seeded loss + dup + reorder, one healing minority partition, one
/// crash-rejoin. Retransmission is on (the default), so every loss is
/// recoverable and the plan only costs virtual time.
fn plan() -> FaultPlan {
    FaultPlan {
        seed: 1234,
        loss_permille: 15,
        dup_permille: 30,
        reorder_permille: 25,
        partitions: vec![Partition {
            start: SimInstant(2_000_000),
            end: SimInstant(8_000_000),
            islanders: vec![3],
        }],
        crash_node: Some(CrashFault {
            node: 1,
            at_barrier: 2,
            reboot: SimDuration::from_millis(25),
        }),
        ..FaultPlan::none()
    }
}

/// Everything that must replay bit for bit: virtual time, traffic, and
/// the recovery counters.
fn fingerprint(out: &RunOutcome) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}:{}",
        out.exec_time.nanos(),
        out.combined.checksum,
        out.bytes_sent,
        out.msgs_sent,
        out.msgs_retransmitted,
        out.dups_filtered,
        out.rejoin_rounds,
        out.rejoin_bytes,
    )
}

fn run_sor(engine: SchedulerMode, faults: FaultPlan, params: SorParams) -> RunOutcome {
    let mut cfg = RunConfig::new(System::Lots, NODES, p4_fedora());
    cfg.dmm_bytes = 8 << 20;
    cfg.scheduler = engine;
    cfg.faults = faults;
    run_app(&cfg, params)
}

fn run_churn(engine: SchedulerMode, faults: FaultPlan, params: ChurnParams) -> RunOutcome {
    let mut cfg = RunConfig::new(System::Lots, NODES, p4_fedora());
    cfg.dmm_bytes = 1 << 20;
    cfg.scheduler = engine;
    cfg.faults = faults;
    run_app(&cfg, params)
}

fn main() {
    let smoke = std::env::var("LOTS_SMOKE").is_ok_and(|v| v == "1");
    let sor_params = SorParams {
        n: if smoke { 64 } else { 128 },
        iters: if smoke { 4 } else { 16 },
    };
    let churn_params = if smoke {
        ChurnParams::smoke()
    } else {
        ChurnParams {
            phases: 48,
            ..ChurnParams::smoke()
        }
    };
    let churn_model = model_checksum(&churn_params, 0);

    let engines = [
        ("Deterministic", SchedulerMode::Deterministic),
        ("Parallel{4}", SchedulerMode::Parallel { workers: 4 }),
    ];
    let mut engine_prints: Vec<(String, String)> = Vec::new();
    for (label, engine) in engines {
        println!("— engine {label} —");

        let clean = run_sor(engine, FaultPlan::none(), sor_params);
        let faulted = run_sor(engine, plan(), sor_params);
        assert_eq!(
            clean.combined.checksum, faulted.combined.checksum,
            "{label}: SOR checksum must survive the fault plan"
        );
        assert_eq!(faulted.msgs_dropped, 0, "{label}: no unrecovered losses");
        assert!(
            faulted.msgs_retransmitted > 0,
            "{label}: the plan must exercise loss"
        );
        assert_eq!(faulted.rejoin_rounds, 1, "{label}: one crash, one rejoin");
        assert!(
            faulted.exec_time > clean.exec_time,
            "{label}: recovery must cost virtual time"
        );
        let replay = run_sor(engine, plan(), sor_params);
        assert_eq!(
            fingerprint(&faulted),
            fingerprint(&replay),
            "{label}: replay must be bit-for-bit"
        );
        println!(
            "  SOR {}x{}x{}: clean {:.3} s, faulted {:.3} s, {} retransmits, \
             {} dups filtered, rejoin moved {} B — checksums identical, replay exact",
            sor_params.n,
            sor_params.n,
            sor_params.iters,
            clean.exec_time.as_secs_f64(),
            faulted.exec_time.as_secs_f64(),
            faulted.msgs_retransmitted,
            faulted.dups_filtered,
            faulted.rejoin_bytes,
        );

        let churned = run_churn(engine, plan(), churn_params);
        for (node, r) in churned.per_node.iter().enumerate() {
            assert_eq!(
                r.checksum, churn_model,
                "{label}: churn node {node} checksum vs the sequential model"
            );
        }
        assert_eq!(churned.msgs_dropped, 0, "{label}: no unrecovered losses");
        assert_eq!(churned.rejoin_rounds, 1, "{label}: one crash, one rejoin");
        println!(
            "  churn {} phases: {:.3} s under faults, {} retransmits, checksum OK",
            churn_params.phases,
            churned.exec_time.as_secs_f64(),
            churned.msgs_retransmitted,
        );
        engine_prints.push((fingerprint(&faulted), fingerprint(&churned)));
    }
    let (sor_a, churn_a) = &engine_prints[0];
    let (sor_b, churn_b) = &engine_prints[1];
    assert_eq!(sor_a, sor_b, "engines disagree on the faulted SOR run");
    assert_eq!(
        churn_a, churn_b,
        "engines disagree on the faulted churn run"
    );
    println!("partition healed, node rejoined, both engines byte-identical.");
}
