//! **lots** — a Rust reproduction of *LOTS: A Software DSM Supporting
//! Large Object Space* (Cheung, Wang & Lau, IEEE CLUSTER 2004).
//!
//! This façade re-exports the whole system; see the crates for detail:
//!
//! * [`core`] (`lots-core`) — the LOTS DSM itself: dynamic memory
//!   mapping with disk swap, 1024-queue best-fit allocator, Scope
//!   Consistency, mixed coherence protocol, per-field-timestamp diffs.
//! * [`jiajia`] (`lots-jiajia`) — the JIAJIA v1.1 baseline.
//! * [`apps`] (`lots-apps`) — the evaluation workloads (ME, LU, SOR,
//!   RX, and the Test 2 large-object program).
//! * [`sim`], [`net`], [`disk`] — the virtual-time, interconnect and
//!   backing-store substrates.
//!
//! Applications are written **once** against the [`DsmApi`] and
//! [`DsmSlice`] traits and run unchanged on LOTS, the LOTS-x ablation
//! and the JIAJIA baseline. Element accessors (`read`/`write`) charge
//! one §4.2 access check per element; **view guards** run the check
//! once per bulk scope and expose a plain slice for the inner loop:
//!
//! ```
//! use lots::core::{run_cluster, ClusterOptions, DsmApi, DsmSlice, LotsConfig};
//! use lots::sim::machine::p4_fedora;
//!
//! let opts = ClusterOptions::new(4, LotsConfig::small(1 << 20), p4_fedora());
//! let (sums, _report) = run_cluster(opts, |dsm| {
//!     let a = dsm.alloc::<i64>(64);
//!     a.write(dsm.me(), dsm.me() as i64 + 1); // one checked access
//!     dsm.barrier();
//!     // One check for the whole scan, check-free inner loop.
//!     let sum = a.view(0..4).iter().sum::<i64>();
//!     sum
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

pub use lots_analyze as analyze;
pub use lots_apps as apps;
pub use lots_core as core;
pub use lots_disk as disk;
pub use lots_jiajia as jiajia;
pub use lots_net as net;
pub use lots_persist as persist;
pub use lots_sim as sim;

pub use lots_core::{DsmApi, DsmSlice};
